package shardrpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sparta/internal/model"
	"sparta/internal/topk"
)

// Config parameterizes a Client.
type Config struct {
	// Name is the client's topk.Algorithm name (default "remote"). The
	// serving layer folds it into the group name; it carries no protocol
	// meaning.
	Name string
	// Conns is the connection pool size (default 1). Requests multiplex
	// over every connection by id, so one connection already carries
	// arbitrary concurrency; more connections spread head-of-line
	// blocking risk.
	Conns int
	// DialTimeout bounds one dial attempt (default 2s).
	DialTimeout time.Duration
	// RedialBackoff is the wait after a failed dial before the next dial
	// is attempted on that connection slot, doubling per consecutive
	// failure up to RedialBackoffMax (defaults 50ms / 2s). Requests
	// arriving inside the backoff window fail fast with ErrTransport —
	// the capped-backoff reconnect contract: a dead server costs one
	// dial per window, not one per query.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// CancelGrace bounds how long a cancelled request waits for the
	// server's anytime partial response after sending the cancel frame
	// (default 250ms). Past it the request reports ErrTransport; the
	// connection stays up (a late response for the id is discarded).
	CancelGrace time.Duration
	// MaxFrame bounds incoming frames (default DefaultMaxFrame).
	MaxFrame int
	// FaultHook, when non-nil, intercepts outgoing frames — the chaos
	// suite's seam.
	FaultHook FaultHook
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "remote"
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 50 * time.Millisecond
	}
	if c.RedialBackoffMax <= 0 {
		c.RedialBackoffMax = 2 * time.Second
	}
	if c.CancelGrace <= 0 {
		c.CancelGrace = 250 * time.Millisecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	return c
}

// Counters is a client's transport telemetry snapshot.
type Counters struct {
	Dials       int64 `json:"dials"`
	DialFails   int64 `json:"dial_fails"`
	FastFails   int64 `json:"fast_fails"`
	ConnDeaths  int64 `json:"conn_deaths"`
	CancelsSent int64 `json:"cancels_sent"`
	Garbled     int64 `json:"garbled"`
}

// Client speaks the shardrpc protocol to one shardserver endpoint. It
// implements topk.Algorithm (so a shardserve.Replica can point Alg at
// it) and shardserve.Resolver (so exact resolution batches over the
// wire). Safe for concurrent use; connections dial lazily and redial
// with capped backoff.
type Client struct {
	addr string
	cfg  Config

	mu      sync.Mutex
	conns   []*clientConn // slot i is nil until dialed
	rr      int           // round-robin cursor over slots
	retryAt time.Time     // no dials before this instant
	backoff time.Duration
	closed  bool

	ids atomic.Uint64

	dials, dialFails, fastFails, connDeaths, cancelsSent, garbled atomic.Int64
}

// NewClient creates a client for addr. No connection is made until the
// first request.
func NewClient(addr string, cfg Config) *Client {
	return &Client{addr: addr, cfg: cfg.withDefaults()}
}

// Addr returns the endpoint the client dials.
func (cl *Client) Addr() string { return cl.addr }

// Name implements topk.Algorithm.
func (cl *Client) Name() string { return cl.cfg.Name }

// Counters returns the client's transport telemetry.
func (cl *Client) Counters() Counters {
	return Counters{
		Dials:       cl.dials.Load(),
		DialFails:   cl.dialFails.Load(),
		FastFails:   cl.fastFails.Load(),
		ConnDeaths:  cl.connDeaths.Load(),
		CancelsSent: cl.cancelsSent.Load(),
		Garbled:     cl.garbled.Load(),
	}
}

// Close closes every connection; in-flight requests fail with
// ErrTransport. The client is unusable afterwards.
func (cl *Client) Close() {
	cl.mu.Lock()
	cl.closed = true
	conns := append([]*clientConn(nil), cl.conns...)
	cl.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.fail(fmt.Errorf("%w: client closed", ErrTransport))
		}
	}
}

// grab returns a live connection, dialing (under the capped backoff) if
// the chosen pool slot is dead.
func (cl *Client) grab() (*clientConn, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, fmt.Errorf("%w: client closed", ErrTransport)
	}
	if cl.conns == nil {
		cl.conns = make([]*clientConn, cl.cfg.Conns)
	}
	slot := cl.rr % len(cl.conns)
	cl.rr++
	if c := cl.conns[slot]; c != nil && !c.isDead() {
		return c, nil
	}
	// Slot needs a dial. Inside the backoff window, fail fast: a dead
	// server costs one dial per window, not one per query. But if any
	// *other* slot is live, use it instead of failing.
	if !cl.retryAt.IsZero() && time.Now().Before(cl.retryAt) {
		for _, c := range cl.conns {
			if c != nil && !c.isDead() {
				return c, nil
			}
		}
		cl.fastFails.Add(1)
		return nil, fmt.Errorf("%w: %s unreachable (in redial backoff)", ErrTransport, cl.addr)
	}
	cl.dials.Add(1)
	nc, err := net.DialTimeout("tcp", cl.addr, cl.cfg.DialTimeout)
	if err != nil {
		cl.dialFails.Add(1)
		if cl.backoff == 0 {
			cl.backoff = cl.cfg.RedialBackoff
		} else {
			cl.backoff *= 2
			if cl.backoff > cl.cfg.RedialBackoffMax {
				cl.backoff = cl.cfg.RedialBackoffMax
			}
		}
		cl.retryAt = time.Now().Add(cl.backoff)
		return nil, fmt.Errorf("%w: dial %s: %v", ErrTransport, cl.addr, err)
	}
	cl.backoff = 0
	cl.retryAt = time.Time{}
	c := newClientConn(cl, nc)
	cl.conns[slot] = c
	return c, nil
}

// Search implements topk.Algorithm.
func (cl *Client) Search(q model.Query, opts topk.Options) (model.TopK, topk.Stats, error) {
	return cl.SearchContext(context.Background(), q, opts)
}

// SearchContext implements topk.Algorithm over the wire: the query,
// the remaining deadline budget, and the scalar options go out; the
// partial top-k, stats, and stop reason come back. Cancellation sends
// an explicit cancel frame and waits (bounded by CancelGrace) for the
// server's anytime partial result, preserving the local contract that
// a cancelled search returns what it had, with a stop reason and no
// error. Every connection-level failure wraps ErrTransport.
func (cl *Client) SearchContext(ctx context.Context, q model.Query, opts topk.Options) (model.TopK, topk.Stats, error) {
	if err := opts.Validate(); err != nil {
		return nil, topk.Stats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var budget time.Duration
	if dl, ok := ctx.Deadline(); ok {
		budget = time.Until(dl)
		if budget <= 0 {
			// Already expired: the anytime contract without a round trip,
			// exactly what a local algorithm would report.
			return nil, topk.Stats{StopReason: topk.StopDeadline}, nil
		}
	}
	body := encodeSearchBody(nil, budget, q, opts)
	id, ch, c, err := cl.issue(tSearch, body)
	if err != nil {
		return nil, topk.Stats{}, err
	}
	defer c.unregister(id)
	select {
	case r := <-ch:
		return decodeSearchResp(r)
	case <-ctx.Done():
		res, st, err := cl.joinCancelled(c, id, ch)
		if err == nil && (st.StopReason == "" || st.StopReason == topk.StopCancelled) {
			// The server stopping on our cancel frame is an artifact of
			// the protocol; the reason the caller observes must reflect
			// why this side cancelled, exactly as a local algorithm
			// watching the same context would report it. (A server-side
			// StopDeadline — its own budget fired first — stands.)
			st.StopReason = stopReasonFor(ctx.Err())
		}
		return res, st, err
	}
}

// Resolve implements shardserve.Resolver: batched exact resolution of
// candidate scores against the server's view.
func (cl *Client) Resolve(ctx context.Context, q model.Query, docs []model.DocID) ([]model.Score, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	body := encodeResolveBody(nil, q, docs)
	id, ch, c, err := cl.issue(tResolve, body)
	if err != nil {
		return nil, err
	}
	defer c.unregister(id)
	var r respFrame
	select {
	case r = <-ch:
	case <-ctx.Done():
		cl.cancelsSent.Add(1)
		_ = c.send(tCancel, id, nil)
		t := time.NewTimer(cl.cfg.CancelGrace)
		defer t.Stop()
		select {
		case r = <-ch:
		case <-t.C:
			return nil, fmt.Errorf("%w: resolve cancelled, no response within grace", ErrTransport)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTransport, r.err)
	}
	switch r.typ {
	case tResolved:
		return decodeResolvedBody(r.body)
	case tError:
		msg, _ := decodeErrorBody(r.body)
		return nil, fmt.Errorf("%w: %s", ErrRemote, msg)
	default:
		return nil, fmt.Errorf("%w: unexpected response type %d", ErrTransport, r.typ)
	}
}

// ServerStats fetches the server's counter snapshot over the stats RPC.
func (cl *Client) ServerStats(ctx context.Context) (ServerStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	id, ch, c, err := cl.issue(tStats, nil)
	if err != nil {
		return ServerStats{}, err
	}
	defer c.unregister(id)
	select {
	case r := <-ch:
		if r.err != nil {
			return ServerStats{}, fmt.Errorf("%w: %v", ErrTransport, r.err)
		}
		switch r.typ {
		case tStatsResult:
			return decodeStatsBody(r.body)
		case tError:
			msg, _ := decodeErrorBody(r.body)
			return ServerStats{}, fmt.Errorf("%w: %s", ErrRemote, msg)
		default:
			return ServerStats{}, fmt.Errorf("%w: unexpected response type %d", ErrTransport, r.typ)
		}
	case <-ctx.Done():
		return ServerStats{}, fmt.Errorf("%w: %v", ErrTransport, ctx.Err())
	}
}

// issue grabs a connection, registers a fresh request id, and sends one
// request frame. On send failure the connection is torn down (the
// stream position is unknowable) and ErrTransport reported.
func (cl *Client) issue(typ byte, body []byte) (uint64, chan respFrame, *clientConn, error) {
	c, err := cl.grab()
	if err != nil {
		return 0, nil, nil, err
	}
	id := cl.ids.Add(1)
	ch := c.register(id)
	if err := c.send(typ, id, body); err != nil {
		c.unregister(id)
		c.fail(fmt.Errorf("%w: send: %v", ErrTransport, err))
		return 0, nil, nil, fmt.Errorf("%w: send: %v", ErrTransport, err)
	}
	return id, ch, c, nil
}

// joinCancelled handles a request whose context fired: send the cancel
// frame, then wait — bounded by CancelGrace — for the server's partial
// response so the request is joined, never leaked. The connection
// survives a grace miss; only this request reports ErrTransport.
func (cl *Client) joinCancelled(c *clientConn, id uint64, ch chan respFrame) (model.TopK, topk.Stats, error) {
	cl.cancelsSent.Add(1)
	_ = c.send(tCancel, id, nil)
	t := time.NewTimer(cl.cfg.CancelGrace)
	defer t.Stop()
	select {
	case r := <-ch:
		return decodeSearchResp(r)
	case <-t.C:
		return nil, topk.Stats{}, fmt.Errorf("%w: cancelled, no response within grace", ErrTransport)
	}
}

func decodeSearchResp(r respFrame) (model.TopK, topk.Stats, error) {
	if r.err != nil {
		return nil, topk.Stats{}, fmt.Errorf("%w: %v", ErrTransport, r.err)
	}
	switch r.typ {
	case tResult:
		return decodeResultBody(r.body)
	case tError:
		msg, _ := decodeErrorBody(r.body)
		return nil, topk.Stats{}, fmt.Errorf("%w: %s", ErrRemote, msg)
	default:
		return nil, topk.Stats{}, fmt.Errorf("%w: unexpected response type %d", ErrTransport, r.typ)
	}
}

// stopReasonFor maps a context error onto the anytime stop vocabulary.
func stopReasonFor(err error) string {
	if err == context.DeadlineExceeded {
		return topk.StopDeadline
	}
	return topk.StopCancelled
}

// respFrame is one response delivered to a waiting request: the frame,
// or the connection-level error that killed it.
type respFrame struct {
	typ  byte
	body []byte
	err  error
}

// clientConn is one pooled connection: a write path (frameWriter), a
// read loop dispatching responses by request id, and the pending-map
// bookkeeping that joins the two.
type clientConn struct {
	c     net.Conn
	owner *Client
	fw    frameWriter

	mu      sync.Mutex
	pending map[uint64]chan respFrame
	dead    bool
}

func newClientConn(cl *Client, nc net.Conn) *clientConn {
	c := &clientConn{
		c:       nc,
		owner:   cl,
		pending: make(map[uint64]chan respFrame),
	}
	c.fw = frameWriter{w: nc, hook: cl.cfg.FaultHook}
	go c.readLoop(cl.cfg.MaxFrame)
	return c
}

func (c *clientConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

func (c *clientConn) register(id uint64) chan respFrame {
	ch := make(chan respFrame, 1)
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		ch <- respFrame{err: fmt.Errorf("connection closed")}
		return ch
	}
	c.pending[id] = ch
	c.mu.Unlock()
	return ch
}

func (c *clientConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

func (c *clientConn) send(typ byte, id uint64, body []byte) error {
	payload := appendHeader(make([]byte, 0, payloadHeaderLen+len(body)), typ, id)
	payload = append(payload, body...)
	return c.fw.send(payload)
}

// fail kills the connection: every pending request learns the error,
// future registrations refuse, and the socket closes. Idempotent.
func (c *clientConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	pend := c.pending
	c.pending = make(map[uint64]chan respFrame)
	c.mu.Unlock()
	c.owner.connDeaths.Add(1)
	for _, ch := range pend {
		select {
		case ch <- respFrame{err: err}:
		default:
		}
	}
	_ = c.c.Close()
}

// readLoop dispatches response frames to their waiting requests. Any
// read error — including a CRC mismatch, after which the stream cannot
// be trusted — kills the connection.
func (c *clientConn) readLoop(maxFrame int) {
	br := bufio.NewReader(c.c)
	for {
		payload, err := readFrame(br, maxFrame)
		if err != nil {
			if err == ErrGarbled {
				c.owner.garbled.Add(1)
			}
			c.fail(fmt.Errorf("%w: read: %v", ErrTransport, err))
			return
		}
		typ, id, body := splitHeader(payload)
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- respFrame{typ: typ, body: body}:
			default:
			}
		}
		// No waiter: a response that outlived its request's cancel grace.
		// Discard — the request already reported.
	}
}
