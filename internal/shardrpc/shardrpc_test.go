// External test package: these tests want bench.MakeAlgorithm for the
// full exact-algorithm family, and internal/bench imports shardrpc for
// the netgrid report — an in-package test would close an import cycle.
package shardrpc_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sparta/internal/algos/algotest"
	"sparta/internal/bench"
	"sparta/internal/core"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/postings"
	"sparta/internal/shardrpc"
	"sparta/internal/shardserve"
	"sparta/internal/topk"
)

// exactAlgos is the exact-capable family the repository's agreement
// tests cover (sNRA excluded there too).
var exactAlgos = []bench.AlgoID{
	bench.AlgoRA, bench.AlgoNRA, bench.AlgoSelNRA, bench.AlgoMaxScore,
	bench.AlgoWAND, bench.AlgoBMW, bench.AlgoJASS, bench.AlgoSparta,
	bench.AlgoPRA, bench.AlgoPNRA, bench.AlgoPBMW, bench.AlgoPWAND,
	bench.AlgoPJASS,
}

// assertMergedExact checks got against the canonical reference (brute
// force): scores byte-identical rank for rank, documents byte-identical
// above the cutoff, any tied document admissible at the cutoff score —
// the same byte-identity contract every exactness test here grants.
func assertMergedExact(t *testing.T, name string, want, got model.TopK) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot  %v\nwant %v", name, len(got), len(want), got, want)
	}
	if len(want) == 0 {
		return
	}
	cut := want[len(want)-1].Score
	for i := range want {
		if got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d score %d, want %d\ngot  %v\nwant %v",
				name, i, got[i].Score, want[i].Score, got, want)
		}
		if want[i].Score > cut && got[i].Doc != want[i].Doc {
			t.Fatalf("%s: rank %d doc %d, want %d\ngot  %v\nwant %v",
				name, i, got[i].Doc, want[i].Doc, got, want)
		}
	}
}

// writeShards writes x as a p-shard verified set in a temp dir.
func writeShards(t *testing.T, x *index.Index, p int) string {
	t.Helper()
	dir := t.TempDir()
	if err := shardserve.WriteDir(x, p, 0, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// startServers opens every shard of dir as its own single-shard group
// (the cmd/shardserver arrangement) and serves each on loopback,
// returning the per-shard endpoints.
func startServers(t *testing.T, dir string, p int, factory shardserve.Factory, scfg shardserve.Config) ([]*shardrpc.Server, [][]string) {
	t.Helper()
	servers := make([]*shardrpc.Server, p)
	addrs := make([][]string, p)
	for s := 0; s < p; s++ {
		g, err := shardserve.OpenShard(dir, s, factory, scfg)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := shardrpc.Listen("127.0.0.1:0", g, shardrpc.ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		servers[s] = srv
		addrs[s] = []string{srv.Addr().String()}
	}
	return servers, addrs
}

// deadAddr returns a loopback address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// waitIdle blocks until the server has no requests in flight.
func waitIdle(t *testing.T, srv *shardrpc.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never went idle")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRemoteMatchesInProcessExact is the over-the-wire form of the
// merge-equivalence property: for every exact algorithm and
// P ∈ {1,2,4}, scatter/gather over loopback shardserver processes is
// byte-identical to both the in-process group over the same shard set
// and the single-index brute-force reference. Runs under -race in CI.
func TestRemoteMatchesInProcessExact(t *testing.T) {
	x := algotest.MediumIndex(t, 420)
	ram := iomodel.RAMConfig()
	queries := []model.Query{
		algotest.RandomQuery(x, 3, 17),
		algotest.RandomQuery(x, 7, 23),
	}
	for _, p := range []int{1, 2, 4} {
		dir := writeShards(t, x, p)
		for _, id := range exactAlgos {
			id := id
			factory := func(v postings.View) topk.Algorithm { return bench.MakeAlgorithm(id, v) }
			// The server side forgoes its own resolution pass: parts must
			// cross the wire with the same lower-bound scores an
			// in-process shard would contribute to the merge.
			servers, addrs := startServers(t, dir, p, factory, shardserve.Config{IO: &ram, NoExactResolve: true})
			remote, clients, err := shardrpc.DialGroup(addrs, shardserve.Config{}, shardrpc.Config{})
			if err != nil {
				t.Fatal(err)
			}
			inproc, err := shardserve.OpenDir(dir, factory, shardserve.Config{IO: &ram})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				k := 10 + qi*15
				name := fmt.Sprintf("P=%d/%s/q%d", p, id, qi)
				want := topk.BruteForce(x, q, k)
				opts := topk.Options{K: k, Exact: true, Threads: 2}
				gotR, stR, err := remote.Search(q, opts)
				if err != nil {
					t.Fatalf("%s: remote: %v", name, err)
				}
				if stR.ShardsDropped != 0 || stR.StopReason != shardserve.StopMerged {
					t.Fatalf("%s: remote dropped=%d reason=%q, want clean merge", name, stR.ShardsDropped, stR.StopReason)
				}
				gotL, _, err := inproc.Search(q, opts)
				if err != nil {
					t.Fatalf("%s: in-process: %v", name, err)
				}
				assertMergedExact(t, name+"/remote", want, gotR)
				assertMergedExact(t, name+"/inproc", want, gotL)
			}
			shardrpc.CloseClients(clients)
			for _, srv := range servers {
				waitIdle(t, srv)
				if v := srv.UnsettledViolations(); v != 0 {
					t.Fatalf("P=%d/%s: %d unsettled violations server-side", p, id, v)
				}
				if d := srv.Group().Unsettled(); d != 0 {
					t.Fatalf("P=%d/%s: %v unsettled I/O server-side", p, id, d)
				}
			}
		}
	}
}

// slowIO is a disk-modeled store config that makes medium-index queries
// take long enough to cancel mid-flight.
func slowIO() iomodel.Config {
	return iomodel.Config{
		BlockSize: 4096, CacheBlocks: 64,
		SeqLatency: 2 * time.Microsecond, RandLatency: 8 * time.Microsecond,
		SleepBatch: 20 * time.Microsecond, StuckLatency: 2 * time.Millisecond,
	}
}

// TestRemoteCancelAndDisconnectSettle drives every remote completion
// path that can strand work — deadline expiry, explicit client cancel,
// and a client that vanishes mid-flight — and checks the server ends
// each one settled: partial results come back with their stop reason,
// and Store.Unsettled()==0 holds at every idle instant (the server's
// violation counter stays zero).
func TestRemoteCancelAndDisconnectSettle(t *testing.T) {
	x := algotest.MediumIndex(t, 99)
	dir := writeShards(t, x, 1)
	io := slowIO()
	g, err := shardserve.OpenShard(dir, 0, func(v postings.View) topk.Algorithm { return core.New(v) },
		shardserve.Config{IO: &io, NoExactResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := shardrpc.Listen("127.0.0.1:0", g, shardrpc.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	q := algotest.RandomQuery(x, 8, 7)
	opts := topk.Options{K: 50, Exact: true}

	cl := shardrpc.NewClient(srv.Addr().String(), shardrpc.Config{})
	defer cl.Close()

	// Deadline path: the budget crosses the wire and the server's
	// anytime partial comes back without an error. Whether the server's
	// restarted budget or the client's own deadline (via the cancel
	// frame) fires first, the caller must see StopDeadline — the same
	// reason a local algorithm watching this context would report.
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Microsecond)
	res, st, err := cl.SearchContext(ctx, q, opts)
	cancel()
	if err != nil {
		t.Fatalf("deadline search: %v", err)
	}
	if st.StopReason != topk.StopDeadline {
		t.Fatalf("deadline search: stop reason %q, want %q", st.StopReason, topk.StopDeadline)
	}
	if len(res) > opts.K {
		t.Fatalf("deadline search: %d results exceed k=%d", len(res), opts.K)
	}

	// Explicit cancel path: the cancel frame reaches the in-flight id;
	// the server joins the request with its partial result.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Microsecond)
		cancel2()
	}()
	_, st2, err := cl.SearchContext(ctx2, q, opts)
	cancel2()
	if err != nil {
		t.Fatalf("cancelled search: %v", err)
	}
	if st2.StopReason != topk.StopCancelled && st2.StopReason != topk.StopDeadline {
		// The race between the cancel frame and a fast completion can
		// legitimately finish the query; but with slow simulated I/O it
		// must not happen every time — this specific run should cancel.
		t.Fatalf("cancelled search: stop reason %q, want an anytime stop", st2.StopReason)
	}

	waitIdle(t, srv)
	if d := g.Unsettled(); d != 0 {
		t.Fatalf("unsettled after cancels: %v", d)
	}

	// Mid-flight disconnect: the client dies with a request executing.
	// The server cancels the stranded request, runs it to completion,
	// and still ends settled.
	cl2 := shardrpc.NewClient(srv.Addr().String(), shardrpc.Config{})
	done := make(chan error, 1)
	go func() {
		_, _, err := cl2.SearchContext(context.Background(), q, opts)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the server")
		}
		time.Sleep(50 * time.Microsecond)
	}
	cl2.Close()
	if err := <-done; !errors.Is(err, shardrpc.ErrTransport) {
		t.Fatalf("disconnected search: err %v, want ErrTransport", err)
	}
	waitIdle(t, srv)
	if d := g.Unsettled(); d != 0 {
		t.Fatalf("unsettled after disconnect: %v", d)
	}
	if v := srv.UnsettledViolations(); v != 0 {
		t.Fatalf("%d unsettled violations", v)
	}
	if s := srv.Stats(); s.Disconnects == 0 {
		t.Fatalf("disconnect not counted: %+v", s)
	}
}

// TestRemoteStopReasonsDistinguishable is the ShardedStats stop-reason
// merging contract over the wire: a remote shard that answers a partial
// (deadline), one that fails at the transport, and one skipped by its
// breaker must stay distinguishable — per run and in the shard
// counters.
func TestRemoteStopReasonsDistinguishable(t *testing.T) {
	x := algotest.MediumIndex(t, 5)
	dir := writeShards(t, x, 3)
	ram := iomodel.RAMConfig()
	slow := slowIO()
	factory := func(v postings.View) topk.Algorithm { return core.New(v) }

	g0, err := shardserve.OpenShard(dir, 0, factory, shardserve.Config{IO: &ram, NoExactResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	s0, err := shardrpc.Listen("127.0.0.1:0", g0, shardrpc.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	g1, err := shardserve.OpenShard(dir, 1, factory, shardserve.Config{IO: &slow, NoExactResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := shardrpc.Listen("127.0.0.1:0", g1, shardrpc.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	addrs := [][]string{{s0.Addr().String()}, {s1.Addr().String()}, {deadAddr(t)}}
	gcfg := shardserve.Config{
		// Shard 1 gets a budget far below its slow-I/O evaluation time;
		// the others keep the full query budget.
		ShardTimeoutFor: func(i int) time.Duration {
			if i == 1 {
				return 300 * time.Microsecond
			}
			return 0
		},
		TripAfter:  1,
		ProbeEvery: 1 << 20, // no probes during this test
		RetryMax:   -1,      // single attempt per shard per query
	}
	g, clients, err := shardrpc.DialGroup(addrs, gcfg, shardrpc.Config{CancelGrace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer shardrpc.CloseClients(clients)

	q := algotest.RandomQuery(x, 8, 11)
	opts := topk.Options{K: 10, Exact: true}

	_, sst, err := g.SearchShards(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := sst.Shards
	if runs[0].Dropped || runs[0].Err != nil {
		t.Fatalf("healthy shard degraded: %+v", runs[0])
	}
	if !runs[1].Dropped || runs[1].Err != nil || runs[1].Stats.StopReason != topk.StopDeadline {
		t.Fatalf("partial shard: dropped=%v err=%v reason=%q, want dropped deadline partial without error",
			runs[1].Dropped, runs[1].Err, runs[1].Stats.StopReason)
	}
	if !runs[2].Dropped || runs[2].Err == nil || runs[2].Skipped {
		t.Fatalf("transport-failed shard: %+v, want dropped with an error on its first attempt", runs[2])
	}
	if !errors.Is(runs[2].Err, shardrpc.ErrTransport) {
		t.Fatalf("transport error not ErrTransport: %v", runs[2].Err)
	}
	if sst.ShardsDropped != 2 || sst.StopReason != shardserve.StopPartial {
		t.Fatalf("aggregate: dropped=%d reason=%q, want 2 partial", sst.ShardsDropped, sst.StopReason)
	}

	// Second query: shard 2's breaker (TripAfter=1) is now open — the
	// shard is skipped, which must read differently from an error.
	_, sst2, err := g.SearchShards(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sst2.Shards[2].Skipped || sst2.Shards[2].Err != nil {
		t.Fatalf("breaker-skipped shard: %+v, want skipped without error", sst2.Shards[2])
	}

	// The three outcomes stay distinguishable in the counters.
	if c := g.Counters(0); c.Errors != 0 || c.DeadlineMisses != 0 || c.Skips != 0 {
		t.Fatalf("healthy shard counters polluted: %+v", c)
	}
	if c := g.Counters(1); c.DeadlineMisses < 1 || c.Errors != 0 || c.Skips != 0 {
		t.Fatalf("partial shard counters: %+v, want deadline misses only", c)
	}
	if c := g.Counters(2); c.Errors != 1 || c.Skips != 1 || c.DeadlineMisses != 0 {
		t.Fatalf("failed shard counters: %+v, want 1 error and 1 skip", c)
	}
}

// TestGarbledFrameKillsConnection: a CRC mismatch must kill the
// connection (never deliver corrupt bytes), count as a bad frame, and
// leave the client able to redial and succeed.
func TestGarbledFrameKillsConnection(t *testing.T) {
	x := algotest.SmallIndex(t, 3)
	dir := writeShards(t, x, 1)
	ram := iomodel.RAMConfig()
	g, err := shardserve.OpenShard(dir, 0, func(v postings.View) topk.Algorithm { return core.New(v) },
		shardserve.Config{IO: &ram, NoExactResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := shardrpc.Listen("127.0.0.1:0", g, shardrpc.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One-shot: frame sequence numbers restart per connection, so
	// keying on seq would garble every redial's first frame too.
	var garbledOnce atomic.Bool
	hook := func(_ uint64, _ byte) shardrpc.WireFault {
		return shardrpc.WireFault{Garble: garbledOnce.CompareAndSwap(false, true)}
	}
	cl := shardrpc.NewClient(srv.Addr().String(), shardrpc.Config{
		FaultHook:     hook,
		RedialBackoff: time.Millisecond,
	})
	defer cl.Close()
	q := algotest.RandomQuery(x, 3, 1)
	if _, _, err := cl.Search(q, topk.Options{K: 5}); !errors.Is(err, shardrpc.ErrTransport) {
		t.Fatalf("garbled request: err %v, want ErrTransport", err)
	}
	// The client redials (capped backoff) and the next clean frame works.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := cl.Search(q, topk.Options{K: 5}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after garbled frame")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s := srv.Stats(); s.BadFrames == 0 {
		t.Fatalf("garbled frame not counted: %+v", s)
	}
}

// TestServerStatsRPC exercises the admin plane: counters cross the wire
// and carry the shard breakdown.
func TestServerStatsRPC(t *testing.T) {
	x := algotest.SmallIndex(t, 8)
	dir := writeShards(t, x, 1)
	ram := iomodel.RAMConfig()
	g, err := shardserve.OpenShard(dir, 0, func(v postings.View) topk.Algorithm { return core.New(v) },
		shardserve.Config{IO: &ram, NoExactResolve: true})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := shardrpc.Listen("127.0.0.1:0", g, shardrpc.ServerConfig{Name: "s0"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := shardrpc.NewClient(srv.Addr().String(), shardrpc.Config{})
	defer cl.Close()
	q := algotest.RandomQuery(x, 3, 2)
	if _, _, err := cl.Search(q, topk.Options{K: 5}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "s0" || st.Requests != 1 || len(st.Shards) != 1 {
		t.Fatalf("stats: %+v, want name s0, 1 request, 1 shard", st)
	}
	if st.Shards[0].Queries != 1 {
		t.Fatalf("shard counters did not cross the wire: %+v", st.Shards[0])
	}
	if st.UnsettledViolations != 0 {
		t.Fatalf("unsettled violations: %d", st.UnsettledViolations)
	}
}
