// Chaos acceptance for the transport: a replicated remote group — every
// replica its own loopback shardserver process behind a seeded schedule
// of dropped, garbled, stalled, and delayed frames on both directions,
// plus one permanently dark server — must keep answering queries
// byte-identical to the unfaulted single-index reference, and every
// server must end settled (Store.Unsettled()==0) on every completion
// path, including queries the client abandoned mid-flight. Run under
// -race in CI.
package shardrpc_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sparta/internal/algos/algotest"
	"sparta/internal/core"
	"sparta/internal/faultinject"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/postings"
	"sparta/internal/shardrpc"
	"sparta/internal/shardserve"
	"sparta/internal/topk"
)

// sameTopK is assertMergedExact as a predicate: scores byte-identical
// rank for rank, documents byte-identical above the cutoff, any tied
// document admissible at the cutoff score.
func sameTopK(want, got model.TopK) bool {
	if len(got) != len(want) {
		return false
	}
	if len(want) == 0 {
		return true
	}
	cut := want[len(want)-1].Score
	for i := range want {
		if got[i].Score != want[i].Score {
			return false
		}
		if want[i].Score > cut && got[i].Doc != want[i].Doc {
			return false
		}
	}
	return true
}

// wireHook adapts a deterministic frame-fault schedule to the
// transport's hook type.
func wireHook(w *faultinject.WireInjector) shardrpc.FaultHook {
	return func(seq uint64, _ byte) shardrpc.WireFault {
		d := w.Decide(seq)
		return shardrpc.WireFault{Drop: d.Drop, Garble: d.Garble, Delay: d.Delay}
	}
}

func TestChaosTransportStaysExactAndSettled(t *testing.T) {
	x := algotest.MediumIndex(t, 777)
	dir := writeShards(t, x, 2)
	io := iomodel.Config{
		BlockSize: 4096, CacheBlocks: 256,
		SeqLatency: time.Microsecond, RandLatency: 4 * time.Microsecond,
		SleepBatch: 20 * time.Microsecond, StuckLatency: 2 * time.Millisecond,
	}
	// ~10% of frames faulted, per direction. Drops are the expensive
	// fate (silence until a deadline or a hedge covers it); garbles
	// fail fast by killing the connection; stalls and delays only add
	// latency.
	plan := faultinject.WirePlan{
		Seed:       777,
		DropRate:   0.01,
		GarbleRate: 0.03,
		StallRate:  0.02, Stall: 2 * time.Millisecond,
		DelayRate: 0.04, Delay: 100 * time.Microsecond,
	}
	factory := func(v postings.View) topk.Algorithm { return core.New(v) }
	const p, r = 2, 3

	var (
		servers []*shardrpc.Server
		clients []*shardrpc.Client
		injs    []*faultinject.WireInjector
	)
	shards := make([]shardserve.Shard, p)
	for s := 0; s < p; s++ {
		reps := make([]shardserve.Replica, r)
		for ri := 0; ri < r; ri++ {
			var addr string
			var scfg shardrpc.ServerConfig
			if s == 0 && ri == 0 {
				// The dark shardserver: shard 0's primary endpoint
				// refuses every connection.
				addr = deadAddr(t)
			} else {
				g, err := shardserve.OpenShard(dir, s, factory, shardserve.Config{IO: &io, NoExactResolve: true})
				if err != nil {
					t.Fatal(err)
				}
				down := faultinject.NewWire(plan, s, ri, 1)
				injs = append(injs, down)
				scfg = shardrpc.ServerConfig{Name: fmt.Sprintf("s%dr%d", s, ri), FaultHook: wireHook(down)}
				srv, err := shardrpc.Listen("127.0.0.1:0", g, scfg)
				if err != nil {
					t.Fatal(err)
				}
				servers = append(servers, srv)
				addr = srv.Addr().String()
			}
			up := faultinject.NewWire(plan, s, ri, 0)
			injs = append(injs, up)
			cl := shardrpc.NewClient(addr, shardrpc.Config{
				Name:             fmt.Sprintf("s%dr%d", s, ri),
				FaultHook:        wireHook(up),
				CancelGrace:      10 * time.Millisecond,
				RedialBackoff:    2 * time.Millisecond,
				RedialBackoffMax: 20 * time.Millisecond,
			})
			clients = append(clients, cl)
			reps[ri] = shardserve.Replica{Name: cl.Name(), Alg: cl, Resolver: cl}
		}
		lo, hi := postings.ShardRange(x.NumDocs(), s, p)
		shards[s] = shardserve.Shard{Name: fmt.Sprintf("shard%d", s), Replicas: reps, Lo: lo, Hi: hi}
	}
	g, err := shardserve.New(shardserve.Config{
		ShardTimeout: 80 * time.Millisecond,
		TripAfter:    3, ProbeEvery: 4,
		RetryMax: 6, RetryBackoff: 10 * time.Microsecond,
		Hedge: shardserve.HedgeConfig{Enabled: true, MinDelay: 2 * time.Millisecond},
	}, shards...)
	if err != nil {
		t.Fatal(err)
	}

	const queries, k = 300, 10
	identical := 0
	for i := 0; i < queries; i++ {
		q := algotest.RandomQuery(x, 3+i%5, uint64(5000+i))
		want := topk.BruteForce(x, q, k)
		got, st, err := g.SearchShards(context.Background(), q, topk.Options{K: k, Exact: true})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if sameTopK(want, got) {
			identical++
		} else if st.ShardsDropped == 0 {
			t.Fatalf("query %d: result differs from the reference with no shard dropped\ngot  %v\nwant %v", i, got, want)
		}
	}
	if frac := float64(identical) / queries; frac < 0.99 {
		t.Errorf("%.2f%% of queries byte-identical to the unfaulted reference, want >= 99%%", 100*frac)
	}

	// The dark shardserver was routed around, not waited on.
	if c := g.Counters(0); c.Promotions == 0 {
		t.Errorf("dark endpoint never promoted away: %+v", c)
	}

	// Abandon one query mid-flight so the stranded-request settlement
	// path runs under the fault schedule too, then tear everything down.
	actx, acancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
	_, _, _ = g.SearchShards(actx, algotest.RandomQuery(x, 8, 9999), topk.Options{K: k, Exact: true})
	acancel()
	shardrpc.CloseClients(clients)

	// Every server drains, ends settled, and saw no idle instant with
	// unsettled I/O across the whole run.
	for _, srv := range servers {
		waitIdle(t, srv)
		if v := srv.UnsettledViolations(); v != 0 {
			t.Errorf("%s: %d unsettled violations", srv.Stats().Name, v)
		}
		if d := srv.Group().Unsettled(); d != 0 {
			t.Errorf("%s: %v unsettled I/O after drain", srv.Stats().Name, d)
		}
		srv.Close()
	}

	// The schedule was not inert: every fate fired somewhere.
	var c faultinject.WireCounters
	for _, in := range injs {
		wc := in.Counters()
		c.Drops += wc.Drops
		c.Garbles += wc.Garbles
		c.Stalls += wc.Stalls
		c.Delays += wc.Delays
	}
	if c.Drops == 0 || c.Garbles == 0 || c.Stalls+c.Delays == 0 {
		t.Fatalf("fault schedule inert: %+v", c)
	}
}
