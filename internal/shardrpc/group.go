// DialGroup: assembling a shardserve.Group whose shards live behind
// shardrpc endpoints — the client half of multi-process scatter/gather.

package shardrpc

import (
	"fmt"

	"sparta/internal/shardserve"
)

// DialGroup builds a shardserve.Group over remote shardserver
// processes: addrs[i] lists shard i's replica endpoints, each becoming
// a Replica whose Alg and Resolver are a shardrpc.Client. The group
// then scatter-gathers exactly as it does in-process — per-shard
// deadline carving, hedging onto a different replica, transient-error
// failover, breakers, k-way merge, and post-merge exact resolution
// (batched over the wire) all unchanged; transport failures surface as
// replica errors and feed the same machinery.
//
// Connections dial lazily; no endpoint needs to be up yet. The returned
// clients are for Close and stats aggregation — one per (shard,
// replica), in shard-major order.
func DialGroup(addrs [][]string, gcfg shardserve.Config, ccfg Config) (*shardserve.Group, []*Client, error) {
	if len(addrs) == 0 {
		return nil, nil, fmt.Errorf("shardrpc: no shard endpoints")
	}
	var clients []*Client
	shards := make([]shardserve.Shard, len(addrs))
	for i, reps := range addrs {
		if len(reps) == 0 {
			return nil, nil, fmt.Errorf("shardrpc: shard %d has no endpoints", i)
		}
		rs := make([]shardserve.Replica, len(reps))
		for j, addr := range reps {
			cl := NewClient(addr, ccfg)
			clients = append(clients, cl)
			rs[j] = shardserve.Replica{Name: addr, Alg: cl, Resolver: cl}
		}
		shards[i] = shardserve.Shard{Name: fmt.Sprintf("shard%d", i), Replicas: rs}
	}
	g, err := shardserve.New(gcfg, shards...)
	if err != nil {
		CloseClients(clients)
		return nil, nil, err
	}
	return g, clients, nil
}

// CloseClients closes every client (nil-safe).
func CloseClients(clients []*Client) {
	for _, cl := range clients {
		if cl != nil {
			cl.Close()
		}
	}
}
