package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling splits produced identical first output")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(9)
	// Geometric counting successes with success prob p has mean p/(1-p).
	p := 0.9
	const draws = 200000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	want := p / (1 - p) // 9
	if math.Abs(mean-want) > 0.2 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricZeroP(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Geometric(0) != 0 {
			t.Fatal("Geometric(0) should always be 0")
		}
	}
}

func TestGeometricNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint16) bool {
		p := float64(pRaw) / 65536 // [0,1)
		return New(seed).Geometric(p) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestZipfDistributionShape(t *testing.T) {
	rng := New(13)
	z := NewZipf(rng, 1.0, 1000)
	const draws = 200000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be the most frequent and frequencies roughly follow
	// 1/(r+1): rank 0 should appear close to 2x rank 1.
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("Zipf counts not decreasing: c0=%d c1=%d c3=%d",
			counts[0], counts[1], counts[3])
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("rank0/rank1 ratio = %v, want ~2", ratio)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(New(1), 1.2, 500)
	sum := 0.0
	for i := 0; i < 500; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
}

func TestZipfSharedSameDistribution(t *testing.T) {
	base := NewZipf(New(1), 1.0, 100)
	shared := NewZipfShared(base, New(99))
	for i := 0; i < 100; i++ {
		if base.Prob(i) != shared.Prob(i) {
			t.Fatal("shared Zipf has different distribution")
		}
	}
	for i := 0; i < 1000; i++ {
		v := shared.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("shared Next() = %d out of range", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const draws = 100000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestTruncNormIntBoundsAndMean(t *testing.T) {
	r := New(23)
	// The voice-query distribution of the paper: mean 4.2, sd 2.96, in [1,12].
	const draws = 100000
	sum := 0
	longFrac := 0
	for i := 0; i < draws; i++ {
		v := r.TruncNormInt(4.2, 2.96, 1, 12)
		if v < 1 || v > 12 {
			t.Fatalf("TruncNormInt out of bounds: %d", v)
		}
		sum += v
		if v >= 10 {
			longFrac++
		}
	}
	mean := float64(sum) / draws
	if mean < 3.9 || mean > 4.9 {
		t.Errorf("truncated mean = %v, want ~4.2-4.6", mean)
	}
	// The paper reports >5% of voice queries have 10+ terms.
	if frac := float64(longFrac) / draws; frac < 0.03 {
		t.Errorf("10+ term fraction = %v, want >= 0.03", frac)
	}
}
