// Package xrand provides deterministic random number generation and the
// samplers the corpus and query generators need: Zipfian term
// frequencies, geometric term-occurrence counts (the paper's ClueWebX10
// scale-up procedure, §5.1), and the truncated normal used for the
// voice-query length distribution (§5.3).
//
// Everything is seeded explicitly; given the same seed, every generator
// in this repository produces byte-identical output, which makes the
// experiments reproducible without shipping datasets.
package xrand

import "math"

// RNG is a SplitMix64 pseudo-random generator. It is small, fast,
// stateless to fork (Split), and statistically strong enough for
// workload synthesis. It intentionally does not depend on math/rand so
// that the stream is stable across Go releases.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Split forks an independent generator whose stream is a pure function
// of the parent's current state. Forking is how the corpus generator
// gives each document its own stream so documents can be generated in
// any order (or in parallel) with identical results.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free-enough reduction; the bias
	// for n << 2^64 is far below anything workload synthesis can see.
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Geometric returns the number of Bernoulli(p) successes before the
// first failure, i.e. a geometric variate with stopping probability
// 1-p counting successes. This is exactly the paper's ClueWebX10
// construction: the number of occurrences of a term with global
// frequency rate F(t) is geometric with stopping probability 1-F(t).
// The returned count can be zero. p must be in [0, 1).
func (r *RNG) Geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		panic("xrand: Geometric with p >= 1")
	}
	// Inversion: floor(log(U)/log(p)) occurrences.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Log(u) / math.Log(p))
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Term popularity in web corpora is famously Zipfian;
// the corpus generator uses s≈1 like ClueWeb's observed distribution.
//
// Sampling uses the inverse of the precomputed cumulative distribution
// (binary search), so construction is O(n) and each sample is O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n ranks with exponent s using rng.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// NewZipfShared returns a sampler that shares base's precomputed
// distribution but draws from rng. Sharing the CDF makes per-document
// samplers cheap to fork, which is what lets documents be generated
// independently (and concurrently) with deterministic results.
func NewZipfShared(base *Zipf, rng *RNG) *Zipf {
	return &Zipf{cdf: base.cdf, rng: rng}
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// TruncNormInt samples an integer from a normal distribution with the
// given mean and standard deviation, truncated (by resampling) to
// [lo, hi]. The voice-query length distribution (mean 4.2, sd 2.96,
// clamped to 1..12 terms) is drawn this way.
func (r *RNG) TruncNormInt(mean, sd float64, lo, hi int) int {
	for {
		v := int(math.Round(mean + sd*r.Norm()))
		if v >= lo && v <= hi {
			return v
		}
	}
}
