package topk

import (
	"testing"
	"time"

	"sparta/internal/corpus"
	"sparta/internal/index"
	"sparta/internal/model"
)

func testView(t *testing.T) *index.Index {
	t.Helper()
	c := corpus.New(corpus.Spec{
		Name: "t", Docs: 400, Vocab: 200, ZipfS: 1.0,
		MeanDocLen: 30, MinDocLen: 4, Seed: 5,
	})
	return index.FromCorpus(c)
}

func TestWithDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.K != DefaultK || o.Threads != 1 || o.SegSize != DefaultSegSize ||
		o.Phi != DefaultPhi || o.BoostF != 1 || o.FracP != 1 {
		t.Errorf("defaults = %+v", o)
	}
	o2 := Options{K: 5, Threads: 3, BoostF: 2}.WithDefaults()
	if o2.K != 5 || o2.Threads != 3 || o2.BoostF != 2 {
		t.Error("explicit values overwritten by defaults")
	}
}

func TestUpperBounds(t *testing.T) {
	u := NewUpperBounds([]model.Score{100, 50, 80})
	if u.Sum() != 230 || u.Len() != 3 {
		t.Errorf("Sum = %d, Len = %d", u.Sum(), u.Len())
	}
	u.Set(0, 40)
	if u.Get(0) != 40 || u.Sum() != 170 {
		t.Errorf("after Set: Get=%d Sum=%d", u.Get(0), u.Sum())
	}
	buf := u.Snapshot(nil)
	if len(buf) != 3 || buf[0] != 40 || buf[2] != 80 {
		t.Errorf("Snapshot = %v", buf)
	}
	// Reuse path.
	buf2 := u.Snapshot(buf)
	if &buf2[0] != &buf[0] {
		t.Error("Snapshot reallocated despite sufficient cap")
	}
}

func TestBruteForceMatchesManualScoring(t *testing.T) {
	x := testView(t)
	q := model.Query{0, 1, 2}
	got := BruteForce(x, q, 10)
	// Manual accumulation.
	acc := make(map[model.DocID]model.Score)
	for _, term := range q {
		for _, p := range x.Postings(term) {
			acc[p.Doc] += p.Score
		}
	}
	all := make(model.TopK, 0, len(acc))
	for d, s := range acc {
		all = append(all, model.Result{Doc: d, Score: s})
	}
	all.Sort()
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, got[i], all[i])
		}
	}
	if len(got) != 10 {
		t.Errorf("len = %d, want 10", len(got))
	}
}

func TestBruteForceDuplicateTerms(t *testing.T) {
	// A term appearing twice contributes twice (additive model).
	x := testView(t)
	single := BruteForce(x, model.Query{3}, 5)
	double := BruteForce(x, model.Query{3, 3}, 5)
	for i := range single {
		if double[i].Score != 2*single[i].Score {
			t.Fatalf("duplicate term not additive at rank %d", i)
		}
	}
}

func TestBruteForceDefaultK(t *testing.T) {
	x := testView(t)
	got := BruteForce(x, model.Query{0}, 0)
	if len(got) > DefaultK {
		t.Errorf("len = %d exceeds DefaultK", len(got))
	}
}

func TestTermMaxima(t *testing.T) {
	x := testView(t)
	q := model.Query{0, 5, 9}
	m := TermMaxima(x, q)
	for i, term := range q {
		if m[i] != x.MaxScore(term) {
			t.Errorf("maxima[%d] = %d, want %d", i, m[i], x.MaxScore(term))
		}
	}
}

func TestRecallProbe(t *testing.T) {
	exact := model.TopK{{Doc: 1, Score: 30}, {Doc: 2, Score: 20}}
	p := NewRecallProbe(exact)
	p.MinInterval = 0
	p.Start()
	p.Observe(model.TopK{{Doc: 1, Score: 30}})
	time.Sleep(2 * time.Millisecond)
	p.Observe(exact)
	pts := p.Series().Points()
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Value != 0.5 || pts[1].Value != 1.0 {
		t.Errorf("recall values = %v, %v", pts[0].Value, pts[1].Value)
	}
	if pts[1].At <= pts[0].At {
		t.Error("timestamps not increasing")
	}
}

func TestRecallProbeRateLimit(t *testing.T) {
	p := NewRecallProbe(model.TopK{{Doc: 1, Score: 1}})
	p.MinInterval = time.Hour
	p.Start()
	for i := 0; i < 10; i++ {
		p.Observe(nil)
	}
	if got := len(p.Series().Points()); got != 1 {
		t.Errorf("rate-limited points = %d, want 1", got)
	}
	p.Final(model.TopK{{Doc: 1, Score: 1}})
	if got := len(p.Series().Points()); got != 2 {
		t.Errorf("Final must bypass rate limit; points = %d", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	ok := []Options{
		{},
		{K: 10, Threads: 4, Exact: true},
		{K: 10, Delta: time.Millisecond},
		{BoostF: 5, FracP: 0.5},
		{Exact: true, BoostF: 1}, // f = 1 is the exact setting itself
		{Exact: true, FracP: 1},  // p = 1 likewise
		{SegSize: 64, Phi: 100, Shards: 12},
	}
	for i, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("valid[%d]: %v", i, err)
		}
	}
	bad := []Options{
		{K: -1},
		{Threads: -2},
		{Delta: -time.Second},
		{BoostF: 0.5},
		{FracP: 1.5},
		{FracP: -0.1},
		{Exact: true, Delta: time.Millisecond},
		{SegSize: -1},
		{Phi: -10},
		{Shards: -3},
		{Exact: true, BoostF: 2},
		{Exact: true, FracP: 0.5},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("invalid[%d] accepted: %+v", i, o)
		}
	}
}
