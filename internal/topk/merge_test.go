package topk

import (
	"math/rand"
	"testing"

	"sparta/internal/model"
)

// reference implements the merge contract the slow, obvious way:
// concatenate, keep the best score per doc, sort, truncate.
func referenceMerge(parts []model.TopK, k int) model.TopK {
	best := make(map[model.DocID]model.Score)
	for _, p := range parts {
		for _, r := range p {
			if s, ok := best[r.Doc]; !ok || r.Score > s {
				best[r.Doc] = r.Score
			}
		}
	}
	all := make(model.TopK, 0, len(best))
	for d, s := range best {
		all = append(all, model.Result{Doc: d, Score: s})
	}
	all.Sort()
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestMergeTopKMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nParts := 1 + rng.Intn(8)
		k := 1 + rng.Intn(20)
		parts := make([]model.TopK, nParts)
		for i := range parts {
			n := rng.Intn(2 * k) // some shards return short (partial) lists
			p := make(model.TopK, 0, n)
			for j := 0; j < n; j++ {
				p = append(p, model.Result{
					Doc:   model.DocID(rng.Intn(60)),
					Score: model.Score(rng.Intn(8) * 1000),
				})
			}
			p.Sort()
			// Shards never emit the same doc twice within one list.
			dedup := p[:0]
			seen := map[model.DocID]bool{}
			for _, r := range p {
				if !seen[r.Doc] {
					seen[r.Doc] = true
					dedup = append(dedup, r)
				}
			}
			parts[i] = dedup
		}
		got := MergeTopK(parts, k)
		want := referenceMerge(parts, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank %d: got %v, want %v\ngot  %v\nwant %v",
					trial, i, got[i], want[i], got, want)
			}
		}
	}
}

func TestMergeTopKEmptyAndSingle(t *testing.T) {
	if got := MergeTopK(nil, 10); len(got) != 0 {
		t.Fatalf("merge of no parts = %v, want empty", got)
	}
	if got := MergeTopK([]model.TopK{{}, {}}, 10); len(got) != 0 {
		t.Fatalf("merge of empty parts = %v, want empty", got)
	}
	one := model.TopK{{Doc: 3, Score: 500}, {Doc: 1, Score: 200}}
	got := MergeTopK([]model.TopK{one}, 10)
	if len(got) != 2 || got[0] != one[0] || got[1] != one[1] {
		t.Fatalf("single-part merge = %v, want %v", got, one)
	}
}

func TestMergeTopKDuplicateKeepsHighest(t *testing.T) {
	a := model.TopK{{Doc: 7, Score: 900}, {Doc: 2, Score: 100}}
	b := model.TopK{{Doc: 7, Score: 400}, {Doc: 5, Score: 300}}
	got := MergeTopK([]model.TopK{a, b}, 10)
	want := model.TopK{{Doc: 7, Score: 900}, {Doc: 5, Score: 300}, {Doc: 2, Score: 100}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeTopKTruncatesAtK(t *testing.T) {
	parts := []model.TopK{
		{{Doc: 1, Score: 500}, {Doc: 2, Score: 400}},
		{{Doc: 3, Score: 450}, {Doc: 4, Score: 350}},
	}
	got := MergeTopK(parts, 2)
	want := model.TopK{{Doc: 1, Score: 500}, {Doc: 3, Score: 450}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
}
