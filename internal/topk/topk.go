// Package topk defines the framework shared by every retrieval
// algorithm in this repository: the Algorithm interface, run options
// (thread count, exactness, the Δ / f / p approximation knobs of §5.3),
// run statistics, the atomic per-term upper-bound vector of the
// Threshold Algorithm, the recall-dynamics probe behind Figures 3f–3g,
// and a brute-force reference implementation used as ground truth by
// tests and recall measurements.
package topk

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sparta/internal/heap"
	"sparta/internal/membudget"
	"sparta/internal/model"
	"sparta/internal/postings"
	"sparta/internal/stats"
)

// DefaultK is the paper's retrieval depth: k = 1000, chosen because
// simple tf-idf retrieval is the first phase of multi-stage ranking
// (§5.1).
const DefaultK = 1000

// DefaultSegSize is Sparta's posting-list segment length (the paper
// uses large segments when m threads are available, §4.2).
const DefaultSegSize = 1024

// DefaultPhi is Sparta's docMap size threshold below which workers
// clone per-term local maps; "in our implementation, Φ = 10K entries"
// (§4.3).
const DefaultPhi = 10_000

// Options parameterizes a query evaluation.
type Options struct {
	// K is the retrieval depth (DefaultK if zero).
	K int
	// Threads is the intra-query parallelism (1 if zero). Sequential
	// algorithms ignore it.
	Threads int
	// Exact requests safe evaluation: TA-family algorithms run with
	// Δ = ∞, pBMW with f = 1, pJASS with p = 1.
	Exact bool
	// Delta is the TA-family approximation knob: stop when the heap has
	// not changed for Delta (§4: "stopping after the heap does not
	// change for some Δ time"). Ignored when Exact.
	Delta time.Duration
	// BoostF is pBMW's threshold-relax factor f >= 1 (§5.2.1). Ignored
	// when Exact.
	BoostF float64
	// FracP is pJASS's fraction of postings to process, 0 < p <= 1
	// (§5.2.1). Ignored when Exact.
	FracP float64
	// SegSize is the posting-list segment length for segment-scheduled
	// algorithms (DefaultSegSize if zero).
	SegSize int
	// Phi is Sparta's local-copy threshold Φ (DefaultPhi if zero).
	Phi int
	// Shards is sNRA's partition count (index shard count if zero).
	Shards int
	// Budget caps candidate-state memory; exceeded => ErrMemoryBudget
	// (the paper's OOM "N/A" entries). Nil = unlimited.
	Budget *membudget.Budget
	// Probe, when non-nil, receives heap snapshots for the
	// recall-dynamics figures.
	Probe *RecallProbe
	// Observer, when non-nil, receives the query's execution events
	// (see the Observer interface). Nil = no observation.
	Observer Observer
}

// Validate reports configuration errors a zero-value-tolerant API
// would otherwise only surface as confusing behaviour.
func (o Options) Validate() error {
	if o.K < 0 {
		return fmt.Errorf("topk: K must be non-negative, got %d", o.K)
	}
	if o.Threads < 0 {
		return fmt.Errorf("topk: Threads must be non-negative, got %d", o.Threads)
	}
	if o.Delta < 0 {
		return fmt.Errorf("topk: Delta must be non-negative, got %v", o.Delta)
	}
	if o.BoostF != 0 && o.BoostF < 1 {
		return fmt.Errorf("topk: BoostF must be >= 1, got %v", o.BoostF)
	}
	if o.FracP != 0 && (o.FracP <= 0 || o.FracP > 1) {
		return fmt.Errorf("topk: FracP must be in (0,1], got %v", o.FracP)
	}
	if o.SegSize < 0 {
		return fmt.Errorf("topk: SegSize must be non-negative, got %d", o.SegSize)
	}
	if o.Phi < 0 {
		return fmt.Errorf("topk: Phi must be non-negative, got %d", o.Phi)
	}
	if o.Shards < 0 {
		return fmt.Errorf("topk: Shards must be non-negative, got %d", o.Shards)
	}
	if o.Exact && o.Delta > 0 {
		return fmt.Errorf("topk: Exact and Delta are mutually exclusive")
	}
	if o.Exact && o.BoostF > 1 {
		return fmt.Errorf("topk: Exact and BoostF > 1 are mutually exclusive")
	}
	if o.Exact && o.FracP != 0 && o.FracP < 1 {
		return fmt.Errorf("topk: Exact and FracP < 1 are mutually exclusive")
	}
	return nil
}

// WithDefaults fills zero fields with the documented defaults.
func (o Options) WithDefaults() Options {
	if o.K == 0 {
		o.K = DefaultK
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.SegSize == 0 {
		o.SegSize = DefaultSegSize
	}
	if o.Phi == 0 {
		o.Phi = DefaultPhi
	}
	if o.BoostF == 0 {
		o.BoostF = 1
	}
	if o.FracP == 0 {
		o.FracP = 1
	}
	return o
}

// Stats reports what a query evaluation did. All counts are
// machine-independent work metrics; Duration includes simulated I/O.
type Stats struct {
	// Duration is the wall-clock evaluation time.
	Duration time.Duration
	// Postings is the number of posting entries traversed.
	Postings int64
	// RandomAccesses counts by-document score lookups (RA family).
	RandomAccesses int64
	// HeapInserts counts successful top-k heap insertions.
	HeapInserts int64
	// CandidatesPeak is the largest candidate-map size observed.
	CandidatesPeak int64
	// Cleanings counts cleaner passes (Sparta).
	Cleanings int64
	// StopReason records why evaluation ended ("exhausted", "ubstop",
	// "delta", "safe", "fraction", ...).
	StopReason string
	// ShardsDropped is the number of index shards that did not deliver
	// a complete result to a scatter/gather query (deadline expiry,
	// error, or health-trip skip) — zero for single-index evaluation.
	// The returned top-k is still valid over the shards that answered
	// (the anytime contract, per shard).
	ShardsDropped int
}

// Algorithm is a top-k retrieval strategy bound to an index.
type Algorithm interface {
	// Name returns the algorithm's report name ("Sparta", "pBMW", ...).
	Name() string
	// Search evaluates q and returns the (possibly approximate) top-k.
	// Equivalent to SearchContext with context.Background().
	Search(q model.Query, opts Options) (model.TopK, Stats, error)
	// SearchContext evaluates q under ctx. Cancellation and deadline
	// expiry are anytime stops, not errors: the call returns the
	// best-so-far partial top-k with Stats.StopReason set to
	// StopCancelled or StopDeadline and a nil error.
	SearchContext(ctx context.Context, q model.Query, opts Options) (model.TopK, Stats, error)
}

// UpperBounds is the Threshold Algorithm's UB[m] vector (Table 1):
// UB[i] bounds the term scores of documents not yet visited in term
// i's posting list. Entries start at the term's maximum score (the
// tightest bound available before traversal; the paper's "∞" is only
// notational) and only decrease as traversal descends the impact list.
// Writers are the single worker currently owning a term's list; readers
// are everyone, hence atomics (§4.3 discusses exactly this sharing).
type UpperBounds struct {
	vals []atomic.Int64
}

// NewUpperBounds creates the vector initialized to each term's max.
func NewUpperBounds(maxima []model.Score) *UpperBounds {
	u := &UpperBounds{vals: make([]atomic.Int64, len(maxima))}
	for i, m := range maxima {
		u.vals[i].Store(int64(m))
	}
	return u
}

// Set lowers (or sets) term i's bound.
func (u *UpperBounds) Set(i int, s model.Score) { u.vals[i].Store(int64(s)) }

// Get returns term i's bound.
func (u *UpperBounds) Get(i int) model.Score { return model.Score(u.vals[i].Load()) }

// Sum returns Σ UB[i] — the left side of the UBStop condition (Eq. 1).
func (u *UpperBounds) Sum() model.Score {
	var sum model.Score
	for i := range u.vals {
		sum += model.Score(u.vals[i].Load())
	}
	return sum
}

// Snapshot copies the vector into buf (reallocating if needed) for
// repeated UB(D) evaluations without per-entry atomic traffic.
func (u *UpperBounds) Snapshot(buf []model.Score) []model.Score {
	if cap(buf) < len(u.vals) {
		buf = make([]model.Score, len(u.vals))
	}
	buf = buf[:len(u.vals)]
	for i := range u.vals {
		buf[i] = model.Score(u.vals[i].Load())
	}
	return buf
}

// Len returns m.
func (u *UpperBounds) Len() int { return len(u.vals) }

// RecallProbe records how an algorithm's result set converges to the
// exact top-k over time — the recall-dynamics measurement of Figures
// 3f–3g. Algorithms call Observe with their current result snapshot;
// the probe timestamps the recall relative to Start.
type RecallProbe struct {
	exact model.TopK
	start time.Time

	mu     sync.Mutex
	series stats.Series
	// MinInterval rate-limits observations (default 1ms).
	MinInterval time.Duration
	last        time.Time
	acc         *heap.ScoreHeap // accumulator for ObserveInsert mode
}

// NewRecallProbe creates a probe against the exact result.
func NewRecallProbe(exact model.TopK) *RecallProbe {
	return &RecallProbe{exact: exact, MinInterval: time.Millisecond}
}

// Start marks time zero. Algorithms call it on entry.
func (p *RecallProbe) Start() {
	p.mu.Lock()
	p.start = time.Now()
	p.last = time.Time{}
	p.acc = nil
	p.mu.Unlock()
}

// ShouldObserve reports whether an observation now would be recorded.
// Building a heap snapshot can be costly (k=1000 under a shared lock),
// so algorithms check this before materializing one.
func (p *RecallProbe) ShouldObserve() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last.IsZero() || time.Since(p.last) >= p.MinInterval
}

// Observe records the recall of approx at the current instant.
// Observations closer than MinInterval to the previous one are dropped
// to bound probe overhead.
func (p *RecallProbe) Observe(approx model.TopK) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.last.IsZero() && now.Sub(p.last) < p.MinInterval {
		return
	}
	p.last = now
	p.series.Record(now.Sub(p.start), model.Recall(p.exact, approx))
}

// ObserveInsert feeds one accepted (doc, score) into the probe's own
// top-k accumulator and records its recall. Algorithms whose result
// state is scattered across thread-local heaps (pBMW) or a candidate
// map with no heap at all (pJASS) use this mode: the probe maintains
// the globally-merged view for them.
func (p *RecallProbe) ObserveInsert(doc model.DocID, score model.Score) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.acc == nil {
		k := len(p.exact)
		if k == 0 {
			k = 1
		}
		p.acc = heap.NewScore(k)
	}
	p.acc.Push(doc, score)
	if !p.last.IsZero() && now.Sub(p.last) < p.MinInterval {
		return
	}
	p.last = now
	p.series.Record(now.Sub(p.start), model.Recall(p.exact, p.acc.Results()))
}

// Final records a last observation regardless of rate limiting.
func (p *RecallProbe) Final(approx model.TopK) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.series.Record(now.Sub(p.start), model.Recall(p.exact, approx))
}

// Series returns the recorded (elapsed, recall) points.
func (p *RecallProbe) Series() *stats.Series {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.series
	return &s
}

// BruteForce computes the exact top-k by fully scoring every document
// that appears in any query term's posting list. It is the ground
// truth for correctness tests and recall measurement — deliberately
// simple, with no early termination to get wrong.
func BruteForce(v postings.View, q model.Query, k int) model.TopK {
	if k <= 0 {
		k = DefaultK
	}
	acc := make(map[model.DocID]model.Score)
	for _, t := range q {
		c := v.DocCursor(t)
		for c.Next() {
			acc[c.Doc()] += c.Score()
		}
	}
	all := make(model.TopK, 0, len(acc))
	for d, s := range acc {
		all = append(all, model.Result{Doc: d, Score: s})
	}
	all.Sort()
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TermMaxima collects the per-term maximum scores of q — the initial
// upper-bound vector.
func TermMaxima(v postings.View, q model.Query) []model.Score {
	out := make([]model.Score, len(q))
	for i, t := range q {
		out[i] = v.MaxScore(t)
	}
	return out
}
