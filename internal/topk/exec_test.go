package topk

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sparta/internal/model"
)

func TestExecStateBackground(t *testing.T) {
	es := NewExecState(context.Background(), nil)
	if es.Stopped() {
		t.Error("background context must not be stopped")
	}
	if es.StopReason() != "" {
		t.Errorf("StopReason = %q, want empty", es.StopReason())
	}
	es.Finish(Stats{}, nil)
}

func TestExecStateNilReceiver(t *testing.T) {
	var es *ExecState
	if es.Stopped() {
		t.Error("nil ExecState must not be stopped")
	}
	if es.StopReason() != "" {
		t.Error("nil ExecState must have empty reason")
	}
	if es.Context() == nil {
		t.Error("nil ExecState context must not be nil")
	}
	// All event emitters must be nil-safe no-ops.
	es.Begin(model.Query{1}, Options{})
	es.SegmentScheduled(0)
	es.HeapUpdate(1, 2)
	es.CleanerPass(1, 2)
	es.Finish(Stats{}, nil)
}

func TestExecStatePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	es := NewExecState(ctx, nil)
	if !es.Stopped() {
		t.Fatal("pre-cancelled context must be stopped immediately, without waiting for a watcher")
	}
	if es.StopReason() != StopCancelled {
		t.Errorf("StopReason = %q, want %q", es.StopReason(), StopCancelled)
	}
	es.Finish(Stats{}, nil)
}

func TestExecStateCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	es := NewExecState(ctx, nil)
	if es.Stopped() {
		t.Fatal("not yet cancelled")
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !es.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("watcher never flipped the stopped flag")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if es.StopReason() != StopCancelled {
		t.Errorf("StopReason = %q, want %q", es.StopReason(), StopCancelled)
	}
	es.Finish(Stats{}, nil)
}

func TestExecStateDeadlineReason(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	es := NewExecState(ctx, nil)
	if !es.Stopped() || es.StopReason() != StopDeadline {
		t.Errorf("stopped=%v reason=%q, want stopped with %q", es.Stopped(), es.StopReason(), StopDeadline)
	}
	es.Finish(Stats{}, nil)
}

func TestExecStateFinishIdempotent(t *testing.T) {
	es := NewExecState(context.Background(), nil)
	es.Finish(Stats{}, nil)
	es.Finish(Stats{}, nil) // second call must not panic (double close)
}

func TestReasonFor(t *testing.T) {
	if r := reasonFor(context.DeadlineExceeded); r != StopDeadline {
		t.Errorf("DeadlineExceeded -> %q", r)
	}
	if r := reasonFor(context.Canceled); r != StopCancelled {
		t.Errorf("Canceled -> %q", r)
	}
	wrapped := errors.Join(errors.New("outer"), context.DeadlineExceeded)
	if r := reasonFor(wrapped); r != StopDeadline {
		t.Errorf("wrapped DeadlineExceeded -> %q", r)
	}
}

func TestRecordingObserverCounts(t *testing.T) {
	var obs RecordingObserver
	es := NewExecState(context.Background(), &obs)
	es.Begin(model.Query{1, 2}, Options{K: 5})
	es.SegmentScheduled(0)
	es.SegmentScheduled(1)
	es.HeapUpdate(7, 100)
	es.CleanerPass(3, 2)
	obs.IOFetch(time.Millisecond)
	es.Finish(Stats{StopReason: "exhausted"}, nil)

	if obs.Queries() != 1 || obs.Finishes() != 1 {
		t.Errorf("queries/finishes = %d/%d", obs.Queries(), obs.Finishes())
	}
	if obs.Segments() != 2 || obs.HeapUpdates() != 1 || obs.CleanerPasses() != 1 {
		t.Errorf("segments/heap/cleaner = %d/%d/%d",
			obs.Segments(), obs.HeapUpdates(), obs.CleanerPasses())
	}
	if obs.IOFetches() != 1 || obs.IOWait() != time.Millisecond {
		t.Errorf("io = %d fetches, %v", obs.IOFetches(), obs.IOWait())
	}
	st, err := obs.Last()
	if err != nil || st.StopReason != "exhausted" {
		t.Errorf("Last() = (%q, %v)", st.StopReason, err)
	}
}

func TestRecordingObserverConcurrent(t *testing.T) {
	var obs RecordingObserver
	var wg sync.WaitGroup
	const workers, events = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				obs.SegmentScheduled(i)
				obs.HeapUpdate(model.DocID(i), model.Score(i))
				obs.IOFetch(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if obs.Segments() != workers*events {
		t.Errorf("segments = %d, want %d", obs.Segments(), workers*events)
	}
	if obs.HeapUpdates() != workers*events {
		t.Errorf("heapUpdates = %d, want %d", obs.HeapUpdates(), workers*events)
	}
	if obs.IOWait() != workers*events*time.Nanosecond {
		t.Errorf("ioWait = %v", obs.IOWait())
	}
}

func TestNopObserverDisablesObservation(t *testing.T) {
	es := NewExecState(context.Background(), NopObserver{})
	if es.observing {
		t.Error("an explicit NopObserver must not mark the state as observing")
	}
	es.Finish(Stats{}, nil)
}
