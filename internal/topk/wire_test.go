package topk

import (
	"testing"
	"time"
)

func TestStatsWireRoundTrip(t *testing.T) {
	cases := []Stats{
		{},
		{
			Duration:       1234567 * time.Nanosecond,
			Postings:       987654321,
			RandomAccesses: 42,
			HeapInserts:    7,
			CandidatesPeak: 100000,
			Cleanings:      3,
			StopReason:     StopDeadline,
			ShardsDropped:  2,
		},
		{Duration: -1, Postings: -5, StopReason: "exhausted"},
		{StopReason: ""},
	}
	for i, want := range cases {
		b := AppendStats([]byte{0xAA}, want) // non-empty prefix: Append semantics
		got, n, err := DecodeStats(b[1:])
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(b)-1 {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(b)-1)
		}
		if got != want {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestStatsWireTrailingBytes(t *testing.T) {
	// Stats embedded in a larger payload: decode must report its own
	// length so the caller can continue from there.
	st := Stats{Postings: 9, StopReason: "safe"}
	b := AppendStats(nil, st)
	b = append(b, 0xDE, 0xAD)
	got, n, err := DecodeStats(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != st || n != len(b)-2 {
		t.Fatalf("got %+v consumed %d, want %+v consumed %d", got, n, st, len(b)-2)
	}
}

func TestStatsWireRejects(t *testing.T) {
	if _, _, err := DecodeStats(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, _, err := DecodeStats([]byte{99}); err == nil {
		t.Fatal("unknown version accepted")
	}
	full := AppendStats(nil, Stats{Postings: 1 << 40, StopReason: "delta"})
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeStats(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
}
