// Cross-shard result merging for the scatter/gather serving layer
// (internal/shardserve): each index shard evaluates the query
// independently and returns its local top-k; MergeTopK combines the
// per-shard lists into the global top-k with a k-way heap merge.
//
// This is the serving-side sibling of heap.Merge (which merges
// per-thread heaps inside one query): here the inputs are already
// canonically sorted result lists, so a k-way merge over the list
// heads produces the first k global results in O(P·k·log P) without
// re-sorting the concatenation.

package topk

import "sparta/internal/model"

// MergeTopK merges per-shard top-k lists into the global top-k.
//
// Each part must be canonically sorted (descending score, ascending
// doc id on ties — the order model.TopK.Sort establishes and every
// Algorithm returns). Duplicate documents across parts — possible
// when shard ranges overlap or a hedged retry returns alongside its
// primary — keep their first (highest-scored) occurrence. The merge
// stops as soon as k results are emitted, so partial per-shard lists
// (anytime results from shards that missed their deadline) merge for
// free: they simply contribute fewer heads.
func MergeTopK(parts []model.TopK, k int) model.TopK {
	if k <= 0 {
		k = DefaultK
	}
	// Heads of the non-empty parts, heap-ordered so hs[0] is the
	// globally next result.
	type head struct{ part, pos int }
	hs := make([]head, 0, len(parts))
	before := func(a, b head) bool {
		ra, rb := parts[a.part][a.pos], parts[b.part][b.pos]
		if ra.Score != rb.Score {
			return ra.Score > rb.Score
		}
		return ra.Doc < rb.Doc
	}
	var siftDown func(i int)
	siftDown = func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(hs) && before(hs[l], hs[min]) {
				min = l
			}
			if r < len(hs) && before(hs[r], hs[min]) {
				min = r
			}
			if min == i {
				return
			}
			hs[i], hs[min] = hs[min], hs[i]
			i = min
		}
	}
	for i, p := range parts {
		if len(p) > 0 {
			hs = append(hs, head{part: i, pos: 0})
		}
	}
	for i := len(hs)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	out := make(model.TopK, 0, min(k, 4*len(hs)))
	var seen map[model.DocID]struct{}
	if len(hs) > 1 {
		seen = make(map[model.DocID]struct{}, k)
	}
	for len(hs) > 0 && len(out) < k {
		top := hs[0]
		r := parts[top.part][top.pos]
		if seen == nil {
			out = append(out, r)
		} else if _, dup := seen[r.Doc]; !dup {
			seen[r.Doc] = struct{}{}
			out = append(out, r)
		}
		if top.pos+1 < len(parts[top.part]) {
			hs[0].pos++
		} else {
			hs[0] = hs[len(hs)-1]
			hs = hs[:len(hs)-1]
		}
		siftDown(0)
	}
	return out
}
