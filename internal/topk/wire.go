package topk

import (
	"encoding/binary"
	"fmt"
)

// statsWireVersion is bumped whenever the binary layout of AppendStats
// changes. DecodeStats rejects versions it does not understand, so a
// mixed-version client/server pair fails loudly instead of
// misinterpreting counters.
const statsWireVersion = 1

// AppendStats appends the binary wire encoding of st to b and returns
// the extended slice. The encoding is a version byte followed by the
// varint-encoded numeric fields and the length-prefixed StopReason
// string; it is the payload shardrpc ships with every remote partial
// result so that scatter/gather accounting (ShardedStats, stop-reason
// counters, exact resolution bookkeeping) is identical whether a shard
// answered in-process or over a socket.
func AppendStats(b []byte, st Stats) []byte {
	b = append(b, statsWireVersion)
	b = binary.AppendVarint(b, int64(st.Duration))
	b = binary.AppendVarint(b, st.Postings)
	b = binary.AppendVarint(b, st.RandomAccesses)
	b = binary.AppendVarint(b, st.HeapInserts)
	b = binary.AppendVarint(b, st.CandidatesPeak)
	b = binary.AppendVarint(b, st.Cleanings)
	b = binary.AppendVarint(b, int64(st.ShardsDropped))
	b = binary.AppendUvarint(b, uint64(len(st.StopReason)))
	b = append(b, st.StopReason...)
	return b
}

// DecodeStats decodes a Stats encoded by AppendStats from the front of
// b, returning the value and the number of bytes consumed.
func DecodeStats(b []byte) (Stats, int, error) {
	var st Stats
	if len(b) == 0 {
		return st, 0, fmt.Errorf("topk: stats: empty buffer")
	}
	if b[0] != statsWireVersion {
		return st, 0, fmt.Errorf("topk: stats: unknown wire version %d", b[0])
	}
	off := 1
	next := func() (int64, error) {
		v, n := binary.Varint(b[off:])
		if n <= 0 {
			return 0, fmt.Errorf("topk: stats: truncated varint at offset %d", off)
		}
		off += n
		return v, nil
	}
	fields := []*int64{
		(*int64)(&st.Duration),
		&st.Postings,
		&st.RandomAccesses,
		&st.HeapInserts,
		&st.CandidatesPeak,
		&st.Cleanings,
	}
	for _, f := range fields {
		v, err := next()
		if err != nil {
			return Stats{}, 0, err
		}
		*f = v
	}
	dropped, err := next()
	if err != nil {
		return Stats{}, 0, err
	}
	st.ShardsDropped = int(dropped)
	slen, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return Stats{}, 0, fmt.Errorf("topk: stats: truncated stop-reason length")
	}
	off += n
	if uint64(len(b)-off) < slen {
		return Stats{}, 0, fmt.Errorf("topk: stats: stop reason truncated (want %d bytes, have %d)", slen, len(b)-off)
	}
	st.StopReason = string(b[off : off+int(slen)])
	off += int(slen)
	return st, off, nil
}
