// Exact-score resolution for merged partial results — shared by the
// scatter/gather serving layer (internal/shardserve) and the live
// segmented index (internal/liveindex), which merge per-part top-k
// lists the same way and need the same final exactness step.

package topk

import (
	"context"

	"sparta/internal/model"
	"sparta/internal/postings"
)

// ResolveTopK recomputes the exact score of every candidate document
// by per-term random access against v and returns the canonical top-k
// (descending score, ascending doc id, truncated to k) plus the number
// of random accesses charged. The fused multi-query executor (package
// fusedexec) calls it per batch member: a member whose traversal
// detached from term tails holds partial accumulator sums, and any
// candidate superset of the true top-k resolves to a byte-identical
// final ranking because documents outside the superset score strictly
// below the true k-th score.
//
// v should already be bound to the member's execution state; the caller
// settles it (topk.ExecState.Finish does, for views it bound).
func ResolveTopK(q model.Query, v postings.View, cands []model.DocID, k int) (model.TopK, int64) {
	var ra int64
	resolved := make(model.TopK, 0, len(cands))
	for _, d := range cands {
		var s model.Score
		for _, t := range q {
			if ts, ok := v.RandomAccess(t, d); ok {
				s += ts
			}
			ra++
		}
		resolved = append(resolved, model.Result{Doc: d, Score: s})
	}
	resolved.Sort()
	if len(resolved) > k {
		resolved = resolved[:k]
	}
	return resolved, ra
}

// ResolveExact replaces every merged candidate's (possibly lower-bound)
// score with its true score, resolved by per-term random accesses
// against the part's own view, then re-ranks and truncates to k. The
// candidate set is the union of all per-part lists — a superset of the
// global top-k for exact per-part evaluation, since a document's
// part-local rank never exceeds its global rank (parts cover disjoint
// document ranges).
//
// viewOf returns part i's view. Views that charge simulated I/O
// (postings.ExecBinder) are bound to ctx for the lookups and settled
// before the call returns, so resolution can never leave I/O debt
// outstanding. Returns the resolved top-k and the number of random
// accesses charged.
func ResolveExact(ctx context.Context, q model.Query, parts []model.TopK, viewOf func(part int) postings.View, k int) (model.TopK, int64) {
	var ra int64
	resolved := make(model.TopK, 0, len(parts)*8)
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		v := viewOf(i)
		var settler postings.Settler
		if b, ok := v.(postings.ExecBinder); ok {
			bound := b.BindExec(ctx, nil, nil, nil)
			if s, ok := bound.(postings.Settler); ok {
				settler = s
			}
			v = bound
		}
		for _, r := range part {
			var s model.Score
			for _, t := range q {
				if ts, ok := v.RandomAccess(t, r.Doc); ok {
					s += ts
				}
				ra++
			}
			resolved = append(resolved, model.Result{Doc: r.Doc, Score: s})
		}
		if settler != nil {
			settler.SettleAll()
		}
	}
	resolved.Sort()
	if len(resolved) > k {
		resolved = resolved[:k]
	}
	return resolved, ra
}
