// Query-execution layer: the per-query cancellation / deadline state
// every algorithm threads through its posting loops, and the Observer
// hook interface that exposes a query's lifecycle to serving
// infrastructure (tracing, metrics, admission control).
//
// All of the paper's algorithms are anytime at heart — Sparta's own
// stopping rule is a heap-idle timeout (§4) — so cancellation here is
// not an error path: an interrupted query returns its best-so-far
// partial top-k with Stats.StopReason set to StopCancelled or
// StopDeadline, exactly like a Δ stop, just triggered from outside.

package topk

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sparta/internal/model"
	"sparta/internal/postings"
)

// Stop reasons reported by externally-interrupted queries.
const (
	// StopCancelled: the query's context was cancelled mid-evaluation.
	StopCancelled = "cancelled"
	// StopDeadline: the query's context deadline expired.
	StopDeadline = "deadline"
	// StopShed: load-aware admission dropped the query before it ran —
	// its remaining context budget was smaller than the observed
	// admission-queue wait, so executing it could only produce a result
	// after its deadline.
	StopShed = "shed"
)

// Observer receives one query's execution events. Implementations must
// be safe for concurrent use: the parallel algorithms emit events from
// many workers at once. All methods are called synchronously on hot-ish
// paths — keep them cheap (counters, ring buffers), never blocking.
type Observer interface {
	// QueryStart is called once, before evaluation begins.
	QueryStart(q model.Query, opts Options)
	// QueryFinish is called once, after evaluation ends (also on error
	// and cancellation), with the final statistics.
	QueryFinish(st Stats, err error)
	// SegmentScheduled is called when a worker begins a posting-list
	// segment (score-order algorithms: the term index; pBMW: the
	// document-range job index).
	SegmentScheduled(term int)
	// HeapUpdate is called when a document enters the top-k heap.
	HeapUpdate(doc model.DocID, score model.Score)
	// CleanerPass is called after each cleaner rebuild (Sparta) with
	// the kept and dropped candidate counts.
	CleanerPass(kept, dropped int)
	// IOFetch is called for every physical block fetch of the simulated
	// storage layer, with the latency charged.
	IOFetch(wait time.Duration)
	// CacheLookup is called for every app-level posting-cache lookup a
	// charged cursor performs (a hit serves the decoded block without
	// touching simulated storage).
	CacheLookup(hit bool)
}

// NopObserver is the no-op default.
type NopObserver struct{}

func (NopObserver) QueryStart(model.Query, Options)     {}
func (NopObserver) QueryFinish(Stats, error)            {}
func (NopObserver) SegmentScheduled(int)                {}
func (NopObserver) HeapUpdate(model.DocID, model.Score) {}
func (NopObserver) CleanerPass(int, int)                {}
func (NopObserver) IOFetch(time.Duration)               {}
func (NopObserver) CacheLookup(bool)                    {}

var _ Observer = NopObserver{}

// RecordingObserver counts every event; safe for concurrent use. The
// zero value is ready.
type RecordingObserver struct {
	queries       atomic.Int64
	finishes      atomic.Int64
	segments      atomic.Int64
	heapUpdates   atomic.Int64
	cleanerPasses atomic.Int64
	ioFetches     atomic.Int64
	ioWaitNs      atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64

	mu        sync.Mutex
	lastStats Stats
	lastErr   error
}

func (r *RecordingObserver) QueryStart(model.Query, Options) { r.queries.Add(1) }

func (r *RecordingObserver) QueryFinish(st Stats, err error) {
	r.finishes.Add(1)
	r.mu.Lock()
	r.lastStats, r.lastErr = st, err
	r.mu.Unlock()
}

func (r *RecordingObserver) SegmentScheduled(int)                { r.segments.Add(1) }
func (r *RecordingObserver) HeapUpdate(model.DocID, model.Score) { r.heapUpdates.Add(1) }
func (r *RecordingObserver) CleanerPass(int, int)                { r.cleanerPasses.Add(1) }

func (r *RecordingObserver) IOFetch(wait time.Duration) {
	r.ioFetches.Add(1)
	r.ioWaitNs.Add(int64(wait))
}

func (r *RecordingObserver) CacheLookup(hit bool) {
	if hit {
		r.cacheHits.Add(1)
	} else {
		r.cacheMisses.Add(1)
	}
}

// Queries returns the number of QueryStart events.
func (r *RecordingObserver) Queries() int64 { return r.queries.Load() }

// Finishes returns the number of QueryFinish events.
func (r *RecordingObserver) Finishes() int64 { return r.finishes.Load() }

// Segments returns the number of SegmentScheduled events.
func (r *RecordingObserver) Segments() int64 { return r.segments.Load() }

// HeapUpdates returns the number of HeapUpdate events.
func (r *RecordingObserver) HeapUpdates() int64 { return r.heapUpdates.Load() }

// CleanerPasses returns the number of CleanerPass events.
func (r *RecordingObserver) CleanerPasses() int64 { return r.cleanerPasses.Load() }

// IOFetches returns the number of IOFetch events.
func (r *RecordingObserver) IOFetches() int64 { return r.ioFetches.Load() }

// IOWait returns the total simulated I/O latency observed.
func (r *RecordingObserver) IOWait() time.Duration { return time.Duration(r.ioWaitNs.Load()) }

// CacheHits returns the number of posting-cache hits observed.
func (r *RecordingObserver) CacheHits() int64 { return r.cacheHits.Load() }

// CacheMisses returns the number of posting-cache misses observed.
func (r *RecordingObserver) CacheMisses() int64 { return r.cacheMisses.Load() }

// Last returns the most recent QueryFinish payload.
func (r *RecordingObserver) Last() (Stats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastStats, r.lastErr
}

var _ Observer = (*RecordingObserver)(nil)

// ExecState is one query evaluation's execution context: it turns a
// context.Context's cancellation into a flag cheap enough to consult in
// posting-loop hot paths, and fans Observer events out from the
// algorithm internals.
//
// Cost model: a watcher goroutine (spawned only when the context is
// cancellable at all) flips an atomic bool the moment the context is
// done, so the per-posting check — Stopped() — is a single read of a
// rarely-written cache line. Algorithms may still amortize further and
// check only every few postings or once per segment; both are fine,
// the bound on cancellation latency is one segment of work plus one
// simulated I/O wait (iomodel sleeps wake early on the same context).
//
// A nil *ExecState is valid and behaves like a background context with
// no observer, so internal helpers (ta.RunNRA) accept it freely.
type ExecState struct {
	ctx       context.Context
	obs       Observer
	observing bool

	stopped   atomic.Bool
	reason    atomic.Value // string; written before stopped is set
	closeCh   chan struct{}
	closeOnce sync.Once

	settleMu sync.Mutex
	settlers []postings.Settler // bound views with possibly-unpaid I/O
}

// NewExecState creates the execution state for one query under ctx.
// A nil ctx means context.Background(); a nil obs means no observation.
// The caller must call Finish exactly once when the query ends (it
// releases the deadline watcher).
func NewExecState(ctx context.Context, obs Observer) *ExecState {
	if ctx == nil {
		ctx = context.Background()
	}
	observing := obs != nil
	if !observing {
		obs = NopObserver{}
	} else if _, nop := obs.(NopObserver); nop {
		observing = false
	}
	e := &ExecState{ctx: ctx, obs: obs, observing: observing, closeCh: make(chan struct{})}
	if done := ctx.Done(); done != nil {
		if err := ctx.Err(); err != nil {
			e.markStopped(err) // pre-cancelled: no watcher needed
		} else {
			go e.watch(done)
		}
	}
	return e
}

// watch flips the stopped flag as soon as the context is done, so hot
// loops only ever pay an atomic load.
func (e *ExecState) watch(done <-chan struct{}) {
	select {
	case <-done:
		e.markStopped(e.ctx.Err())
	case <-e.closeCh:
	}
}

func (e *ExecState) markStopped(err error) {
	e.reason.Store(reasonFor(err))
	e.stopped.Store(true)
}

// reasonFor maps a context error to the Stats.StopReason vocabulary.
func reasonFor(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancelled
}

// Context returns the query's context (never nil).
func (e *ExecState) Context() context.Context {
	if e == nil {
		return context.Background()
	}
	return e.ctx
}

// Stopped reports whether the query's context has been cancelled or
// its deadline has expired. This is the hot-path check: one atomic
// load, no syscalls, no time lookups.
func (e *ExecState) Stopped() bool {
	return e != nil && e.stopped.Load()
}

// StopReason returns StopCancelled or StopDeadline once Stopped, else
// the empty string.
func (e *ExecState) StopReason() string {
	if e == nil || !e.stopped.Load() {
		return ""
	}
	return e.reason.Load().(string)
}

// Begin emits the QueryStart event.
func (e *ExecState) Begin(q model.Query, opts Options) {
	if e != nil && e.observing {
		e.obs.QueryStart(q, opts)
	}
}

// Finish releases the deadline watcher, settles any outstanding I/O
// charges of bound views, and emits the QueryFinish event. Call
// exactly once, when the evaluation ends (any path). Every algorithm
// joins its workers before returning, so by the time Finish runs no
// goroutine still touches the bound cursors — the precondition
// postings.Settler requires.
func (e *ExecState) Finish(st Stats, err error) {
	if e == nil {
		return
	}
	e.closeOnce.Do(func() { close(e.closeCh) })
	e.settleMu.Lock()
	settlers := e.settlers
	e.settlers = nil
	e.settleMu.Unlock()
	for _, s := range settlers {
		s.SettleAll()
	}
	if e.observing {
		e.obs.QueryFinish(st, err)
	}
}

// SegmentScheduled emits the segment event.
func (e *ExecState) SegmentScheduled(term int) {
	if e != nil && e.observing {
		e.obs.SegmentScheduled(term)
	}
}

// HeapUpdate emits the heap-insert event.
func (e *ExecState) HeapUpdate(doc model.DocID, score model.Score) {
	if e != nil && e.observing {
		e.obs.HeapUpdate(doc, score)
	}
}

// CleanerPass emits the cleaner event.
func (e *ExecState) CleanerPass(kept, dropped int) {
	if e != nil && e.observing {
		e.obs.CleanerPass(kept, dropped)
	}
}

// BindView attaches the execution state to views that support it (the
// simulated-disk indexes implement postings.ExecBinder): their I/O
// waits end early on cancellation — the natural cancellation point for
// disk-resident queries — and physical fetches flow to the observer.
// Views without binding support (the in-memory index) pass through.
func (e *ExecState) BindView(v postings.View) postings.View {
	if e == nil {
		return v
	}
	b, ok := v.(postings.ExecBinder)
	if !ok {
		return v
	}
	// Even uncancellable, unobserved queries bind: the bound view tracks
	// its readers so Finish can settle I/O charges that early-terminating
	// algorithms would otherwise abandon unpaid.
	var onIO func(time.Duration)
	var onCache func(bool)
	if e.observing {
		onIO = e.obs.IOFetch
		onCache = e.obs.CacheLookup
	}
	var onStop func()
	if e.ctx.Done() != nil {
		// A cut-short I/O wait marks the stop flag synchronously: once a
		// reader's sleeps become free, the evaluating goroutine could
		// otherwise burn through its remaining postings at memory speed
		// before the watcher goroutine's asynchronous flip is visible.
		onStop = func() { e.markStopped(e.ctx.Err()) }
	}
	bound := b.BindExec(e.ctx, onIO, onStop, onCache)
	if s, ok := bound.(postings.Settler); ok {
		e.settleMu.Lock()
		e.settlers = append(e.settlers, s)
		e.settleMu.Unlock()
	}
	return bound
}
