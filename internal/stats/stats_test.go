package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleMean(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if got := s.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Percentile(95) != 0 || s.StdDev() != 0 {
		t.Error("empty sample should return zeros")
	}
}

func TestPercentileOrdering(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %v, want 100", got)
	}
	p50 := s.Percentile(50)
	if p50 < 50 || p50 > 51 {
		t.Errorf("P50 = %v, want ~50.5", p50)
	}
	p95 := s.Percentile(95)
	if p95 < 95 || p95 > 96 {
		t.Errorf("P95 = %v, want ~95", p95)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, aRaw, bRaw uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		var s Sample
		for _, x := range xs {
			s.Add(x)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return s.Percentile(a) <= s.Percentile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(250 * time.Millisecond)
	if got := s.Mean(); got != 250 {
		t.Errorf("AddDuration mean = %v ms, want 250", got)
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.Record(10*time.Millisecond, 0.5)
	s.Record(20*time.Millisecond, 0.8)
	s.Record(30*time.Millisecond, 1.0)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},
		{10 * time.Millisecond, 0.5},
		{15 * time.Millisecond, 0.5},
		{25 * time.Millisecond, 0.8},
		{time.Second, 1.0},
	}
	for _, c := range cases {
		if got := s.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestMergeMean(t *testing.T) {
	a, b := &Series{}, &Series{}
	a.Record(0, 0)
	a.Record(10*time.Millisecond, 1.0)
	b.Record(0, 0)
	b.Record(20*time.Millisecond, 1.0)
	m := MergeMean([]*Series{a, b}, 10*time.Millisecond, 20*time.Millisecond)
	pts := m.Points()
	if len(pts) != 3 {
		t.Fatalf("merged points = %d, want 3", len(pts))
	}
	if pts[1].Value != 0.5 {
		t.Errorf("merged value at 10ms = %v, want 0.5", pts[1].Value)
	}
	if pts[2].Value != 1.0 {
		t.Errorf("merged value at 20ms = %v, want 1.0", pts[2].Value)
	}
}

func TestMergeMeanEmpty(t *testing.T) {
	m := MergeMean(nil, time.Millisecond, time.Second)
	if len(m.Points()) != 0 {
		t.Error("merging no series should yield empty series")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1)
	for _, x := range []float64{0.1, 0.9, 1.5, 2.5, 2.9} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if got := h.Frac(0); got != 0.4 {
		t.Errorf("Frac(0) = %v, want 0.4", got)
	}
	if got := h.Frac(2); got != 0.4 {
		t.Errorf("Frac(2) = %v, want 0.4", got)
	}
}

func TestFmtMS(t *testing.T) {
	cases := []struct {
		ms   float64
		want string
	}{
		{0.5, "0.5"},
		{12.34, "12.3"},
		{860, "860"},
		{13291, "13,291"},
		{54343, "54,343"},
		{1234567, "1,234,567"},
	}
	for _, c := range cases {
		if got := FmtMS(c.ms); got != c.want {
			t.Errorf("FmtMS(%v) = %q, want %q", c.ms, got, c.want)
		}
	}
}
