// Package stats provides the small statistical toolkit the experiment
// harness needs: means, percentiles (the paper reports mean and 95th
// percentile latencies), histograms, and time-stamped series for the
// recall-dynamics figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of float64 observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration appends a duration observation in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank interpolation. The paper's "95% latency" (tail latency
// of the slowest 5% of queries) is Percentile(95).
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Point is one observation of a time series: a value recorded at an
// offset from the start of a run. The recall-dynamics figures (3f, 3g)
// are series of (elapsed time, recall) points.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series.
type Series struct {
	pts []Point
}

// Record appends a point.
func (s *Series) Record(at time.Duration, v float64) {
	s.pts = append(s.pts, Point{At: at, Value: v})
}

// Points returns the recorded points in insertion order.
func (s *Series) Points() []Point { return s.pts }

// At returns the latest value recorded at or before t, or 0 if none.
// Series are assumed to be recorded in nondecreasing time order.
func (s *Series) At(t time.Duration) float64 {
	v := 0.0
	for _, p := range s.pts {
		if p.At > t {
			break
		}
		v = p.Value
	}
	return v
}

// MergeMean averages several series onto a common time grid: for each
// grid instant it takes every series' latest value and averages them.
// The recall-dynamics plots average 100 query runs this way.
func MergeMean(series []*Series, step time.Duration, horizon time.Duration) *Series {
	out := &Series{}
	if len(series) == 0 {
		return out
	}
	for t := time.Duration(0); t <= horizon; t += step {
		sum := 0.0
		for _, s := range series {
			sum += s.At(t)
		}
		out.Record(t, sum/float64(len(series)))
	}
	return out
}

// Histogram counts observations into fixed-width buckets; used by the
// harness to sanity-check workload distributions (e.g. query lengths).
type Histogram struct {
	Width   float64
	Buckets map[int]int
	total   int
}

// NewHistogram creates a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	return &Histogram{Width: width, Buckets: make(map[int]int)}
}

// Add counts an observation.
func (h *Histogram) Add(x float64) {
	h.Buckets[int(math.Floor(x/h.Width))]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Frac returns the fraction of observations in bucket b.
func (h *Histogram) Frac(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[b]) / float64(h.total)
}

// FmtMS formats a millisecond quantity the way the paper's tables do:
// integer ms with thousands separators for large values.
func FmtMS(ms float64) string {
	if ms >= 10000 {
		v := int64(ms + 0.5)
		return groupDigits(v)
	}
	if ms >= 100 {
		return fmt.Sprintf("%.0f", ms)
	}
	return fmt.Sprintf("%.1f", ms)
}

func groupDigits(v int64) string {
	s := fmt.Sprintf("%d", v)
	n := len(s)
	if n <= 3 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (n-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
