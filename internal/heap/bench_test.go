package heap

import (
	"testing"

	"sparta/internal/cmap"
	"sparta/internal/model"
)

// Micro-benchmarks for the heap disciplines: the score heap's push path
// (hot in every document-order algorithm) and the NRA doc heap's
// insert-with-lazy-refresh (Algorithm 1 lines 30-32, O(k) per insert).

func BenchmarkScoreHeapPush(b *testing.B) {
	h := NewScore(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Push(model.DocID(i), model.Score(i%100_000))
	}
}

func BenchmarkScoreHeapPushMostlyRejected(b *testing.B) {
	// After warmup the threshold rejects nearly everything — the
	// fast path of a converged query.
	h := NewScore(100)
	for i := 0; i < 10_000; i++ {
		h.Push(model.DocID(i), model.Score(1_000_000+i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(model.DocID(i), model.Score(i%1000))
	}
}

func BenchmarkDocHeapUpdateInsert(b *testing.B) {
	for _, k := range []int{100, 1000} {
		b.Run(sizeName(k), func(b *testing.B) {
			h := NewDoc(k)
			docs := make([]*cmap.DocState, b.N)
			for i := range docs {
				d := cmap.NewDocState(model.DocID(i), 4)
				d.SetScore(0, model.Score(i%50_000+1))
				docs[i] = d
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.UpdateInsert(docs[i])
			}
		})
	}
}

func sizeName(k int) string {
	if k == 100 {
		return "k=100"
	}
	return "k=1000"
}
