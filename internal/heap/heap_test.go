package heap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sparta/internal/cmap"
	"sparta/internal/model"
)

func TestScoreHeapKeepsTopK(t *testing.T) {
	h := NewScore(3)
	for i := 1; i <= 10; i++ {
		h.Push(model.DocID(i), model.Score(i*10))
	}
	res := h.Results()
	want := []model.Score{100, 90, 80}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i, w := range want {
		if res[i].Score != w {
			t.Errorf("rank %d score %d, want %d", i, res[i].Score, w)
		}
	}
}

func TestScoreHeapThresholdZeroUntilFull(t *testing.T) {
	h := NewScore(3)
	h.Push(1, 100)
	h.Push(2, 200)
	if h.Threshold() != 0 {
		t.Errorf("Θ = %d before full, want 0", h.Threshold())
	}
	h.Push(3, 300)
	if h.Threshold() != 100 {
		t.Errorf("Θ = %d, want 100", h.Threshold())
	}
}

func TestScoreHeapRejectsAtThreshold(t *testing.T) {
	h := NewScore(2)
	h.Push(1, 10)
	h.Push(2, 20)
	if h.Push(3, 10) {
		t.Error("score == Θ must be rejected")
	}
	if !h.Push(4, 15) {
		t.Error("score > Θ must be accepted")
	}
	if h.Threshold() != 15 {
		t.Errorf("Θ = %d, want 15", h.Threshold())
	}
}

func TestScoreHeapMatchesSortProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8, n uint8) bool {
		k := int(kRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		h := NewScore(k)
		var all []model.Score
		for i := 0; i < int(n); i++ {
			s := model.Score(rng.Intn(1000))
			all = append(all, s)
			h.Push(model.DocID(i), s)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
		res := h.Results()
		want := len(all)
		if want > k {
			want = k
		}
		if len(res) != want {
			return false
		}
		for i := range res {
			if res[i].Score != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewScorePanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewScore(0) did not panic")
		}
	}()
	NewScore(0)
}

func TestMerge(t *testing.T) {
	a, b := NewScore(3), NewScore(3)
	a.Push(1, 100)
	a.Push(2, 90)
	a.Push(3, 80)
	b.Push(4, 95)
	b.Push(5, 85)
	b.Push(1, 100) // duplicate doc
	merged := Merge(4, a, b)
	if len(merged) != 4 {
		t.Fatalf("merged len = %d, want 4", len(merged))
	}
	wantDocs := []model.DocID{1, 4, 2, 5}
	for i, w := range wantDocs {
		if merged[i].Doc != w {
			t.Errorf("rank %d doc %d, want %d", i, merged[i].Doc, w)
		}
	}
}

func TestMergeDuplicateKeepsHighest(t *testing.T) {
	a, b := NewScore(2), NewScore(2)
	a.Push(7, 50)
	b.Push(7, 70)
	merged := Merge(2, a, b)
	if len(merged) != 1 || merged[0].Score != 70 {
		t.Errorf("merged = %v, want doc 7 @ 70", merged)
	}
}

func newDoc(id model.DocID, m int, scores ...model.Score) *cmap.DocState {
	d := cmap.NewDocState(id, m)
	for i, s := range scores {
		if s > 0 {
			d.SetScore(i, s)
		}
	}
	return d
}

func TestDocHeapInsertAndTheta(t *testing.T) {
	h := NewDoc(2)
	d1 := newDoc(1, 2, 50, 0)
	d2 := newDoc(2, 2, 30, 20)
	_, theta := h.UpdateInsert(d1)
	if theta != 0 {
		t.Errorf("Θ = %d before full, want 0", theta)
	}
	_, theta = h.UpdateInsert(d2)
	if theta != 50 {
		t.Errorf("Θ = %d, want 50 (both LBs are 50, min is 50)", theta)
	}
}

func TestDocHeapEviction(t *testing.T) {
	h := NewDoc(2)
	d1 := newDoc(1, 1, 10)
	d2 := newDoc(2, 1, 30)
	d3 := newDoc(3, 1, 20)
	h.UpdateInsert(d1)
	h.UpdateInsert(d2)
	ev, theta := h.UpdateInsert(d3)
	if ev != d1 {
		t.Errorf("evicted %v, want d1", ev)
	}
	if d1.HeapIdx != -1 {
		t.Error("evicted doc still has heap index")
	}
	if theta != 20 {
		t.Errorf("Θ = %d, want 20", theta)
	}
	if !h.Contains(d2) || !h.Contains(d3) || h.Contains(d1) {
		t.Error("Contains inconsistent after eviction")
	}
}

func TestDocHeapLazyLBRefreshOnInsert(t *testing.T) {
	h := NewDoc(2)
	d1 := newDoc(1, 2, 10, 0)
	d2 := newDoc(2, 2, 40, 0)
	h.UpdateInsert(d1)
	h.UpdateInsert(d2)
	// d1's score improves concurrently; heap still has stale CachedLB.
	d1.SetScore(1, 100)
	// Re-inserting an in-heap doc is a no-op (paper semantics).
	_, theta := h.UpdateInsert(d1)
	if theta != 10 {
		t.Errorf("Θ after no-op insert = %d, want stale 10", theta)
	}
	// A new insert triggers the lazy refresh of line 30-32.
	d3 := newDoc(3, 2, 5, 0)
	ev, theta := h.UpdateInsert(d3)
	if ev != d3 {
		t.Errorf("evicted %v, want the new weakest d3", ev)
	}
	if theta != 40 {
		t.Errorf("Θ = %d, want 40 after refresh (d1 now 110, d2 40)", theta)
	}
}

func TestDocHeapRefresh(t *testing.T) {
	h := NewDoc(2)
	d1 := newDoc(1, 2, 10, 0)
	d2 := newDoc(2, 2, 20, 0)
	h.UpdateInsert(d1)
	h.UpdateInsert(d2)
	d1.SetScore(1, 100)
	if theta := h.Refresh(); theta != 20 {
		t.Errorf("Θ after Refresh = %d, want 20", theta)
	}
}

func TestDocHeapResults(t *testing.T) {
	h := NewDoc(3)
	h.UpdateInsert(newDoc(1, 1, 30))
	h.UpdateInsert(newDoc(2, 1, 10))
	h.UpdateInsert(newDoc(3, 1, 20))
	res := h.Results()
	if len(res) != 3 || res[0].Doc != 1 || res[1].Doc != 3 || res[2].Doc != 2 {
		t.Errorf("Results = %v", res)
	}
}

func TestDocHeapHeapIdxConsistencyProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewDoc(5)
		var docs []*cmap.DocState
		for i := 0; i <= int(n); i++ {
			d := newDoc(model.DocID(i), 1, model.Score(rng.Intn(100)+1))
			docs = append(docs, d)
			h.UpdateInsert(d)
			// Invariant: items' HeapIdx match their positions.
			for idx, it := range h.Items() {
				if it.HeapIdx != idx {
					return false
				}
			}
			// Invariant: min-heap ordering on CachedLB.
			items := h.Items()
			for j := 1; j < len(items); j++ {
				if items[j].CachedLB < items[(j-1)/2].CachedLB {
					return false
				}
			}
		}
		// Every doc is either in the heap with valid idx or marked out.
		in := 0
		for _, d := range docs {
			if d.HeapIdx >= 0 {
				in++
			}
		}
		return in == h.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
