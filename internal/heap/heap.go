// Package heap implements the two top-k heap disciplines of the paper's
// algorithms (§3): ScoreHeap, a bounded min-heap ordered by full
// document score (the RA / document-order discipline), and DocHeap, the
// NRA/Sparta heap ordered by document *lower bounds* with the lazy
// lower-bound refresh of Algorithm 1 lines 30–32.
//
// Both heaps are single-threaded data structures; the parallel
// algorithms guard them with their own locks (Sparta serializes heap
// updates under a shared lock, §4.3). The package also provides Merge
// for combining per-thread local heaps, which pBMW and sNRA need.
package heap

import (
	"sparta/internal/cmap"
	"sparta/internal/model"
)

// ScoreHeap is a bounded min-heap of (doc, score) keeping the k highest
// scores seen. The threshold Θ is the k-th (lowest retained) score once
// k documents are held, and 0 before that — exactly the Θ of §3.1.
type ScoreHeap struct {
	k     int
	items []model.Result
}

// NewScore creates a heap keeping the top k scores.
func NewScore(k int) *ScoreHeap {
	if k <= 0 {
		panic("heap: k must be positive")
	}
	return &ScoreHeap{k: k, items: make([]model.Result, 0, k)}
}

// Len returns the number of held documents.
func (h *ScoreHeap) Len() int { return len(h.items) }

// K returns the heap's capacity.
func (h *ScoreHeap) K() int { return h.k }

// Threshold returns Θ: the lowest retained score when full, else 0.
func (h *ScoreHeap) Threshold() model.Score {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].Score
}

// Push offers a scored document, returning true if it entered the heap
// (evicting the previous minimum when full). Scores equal to the
// threshold are rejected: they cannot improve the top-k.
func (h *ScoreHeap) Push(doc model.DocID, score model.Score) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, model.Result{Doc: doc, Score: score})
		h.siftUp(len(h.items) - 1)
		return true
	}
	if score <= h.items[0].Score {
		return false
	}
	h.items[0] = model.Result{Doc: doc, Score: score}
	h.siftDown(0)
	return true
}

// Results returns the held documents, canonically sorted.
func (h *ScoreHeap) Results() model.TopK {
	out := make(model.TopK, len(h.items))
	copy(out, h.items)
	out.Sort()
	return out
}

func (h *ScoreHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Score <= h.items[i].Score {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *ScoreHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.items[l].Score < h.items[min].Score {
			min = l
		}
		if r < n && h.items[r].Score < h.items[min].Score {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

// Merge combines per-thread local heaps into the global top-k — the
// final step of the shared-nothing parallelizations (pBMW, sNRA,
// §5.2). Duplicate documents (possible when shards overlap work) keep
// their highest score.
func Merge(k int, heaps ...*ScoreHeap) model.TopK {
	best := make(map[model.DocID]model.Score)
	for _, h := range heaps {
		for _, r := range h.items {
			if s, ok := best[r.Doc]; !ok || r.Score > s {
				best[r.Doc] = r.Score
			}
		}
	}
	all := make(model.TopK, 0, len(best))
	for d, s := range best {
		all = append(all, model.Result{Doc: d, Score: s})
	}
	all.Sort()
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// DocHeap is the NRA/Sparta document heap: a bounded min-heap of
// candidate DocStates ordered by their (cached) lower bounds. Callers
// serialize access externally (Sparta's shared heap lock).
type DocHeap struct {
	k     int
	items []*cmap.DocState
}

// NewDoc creates a document heap of capacity k.
func NewDoc(k int) *DocHeap {
	if k <= 0 {
		panic("heap: k must be positive")
	}
	return &DocHeap{k: k, items: make([]*cmap.DocState, 0, k)}
}

// Len returns the number of held candidates.
func (h *DocHeap) Len() int { return len(h.items) }

// K returns the heap's capacity.
func (h *DocHeap) K() int { return h.k }

// Contains reports whether d is currently in the heap.
func (h *DocHeap) Contains(d *cmap.DocState) bool { return d.HeapIdx >= 0 }

// Threshold returns Θ: the k-th lowest cached lower bound when full,
// else 0 (§3.1: "as long as the heap contains fewer than k documents,
// Θ remains zero").
func (h *DocHeap) Threshold() model.Score {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].CachedLB
}

// UpdateInsert performs Algorithm 1's UPDATE_HEAP body (minus the
// lock, which the caller holds). If d is already in the heap nothing
// happens — its improved lower bound is picked up lazily at the next
// insert, as in the paper. Otherwise d is inserted, every held
// candidate's lower bound is refreshed from its score vector, the heap
// order re-established, and excess candidates evicted. It returns the
// evicted candidate (nil if none) and the new Θ.
func (h *DocHeap) UpdateInsert(d *cmap.DocState) (evicted *cmap.DocState, theta model.Score) {
	if d.HeapIdx >= 0 {
		return nil, h.Threshold()
	}
	d.HeapIdx = len(h.items)
	h.items = append(h.items, d)
	// Lazy LB refresh of all heap documents (lines 30-32): candidates'
	// score vectors advance concurrently, so cached bounds go stale;
	// refreshing here keeps Θ as tight as the paper's.
	for _, it := range h.items {
		it.CachedLB = it.LB()
	}
	h.init()
	if len(h.items) > h.k {
		evicted = h.pop()
	}
	return evicted, h.Threshold()
}

// Refresh re-reads every held candidate's lower bound and restores heap
// order, returning the new Θ. The cleaner uses it to tighten Θ without
// inserting.
func (h *DocHeap) Refresh() model.Score {
	for _, it := range h.items {
		it.CachedLB = it.LB()
	}
	h.init()
	return h.Threshold()
}

// Items returns the held candidates in heap order (not rank order).
// The caller must not modify the slice.
func (h *DocHeap) Items() []*cmap.DocState { return h.items }

// Results returns the held candidates ranked by lower bound.
func (h *DocHeap) Results() model.TopK {
	out := make(model.TopK, 0, len(h.items))
	for _, d := range h.items {
		out = append(out, model.Result{Doc: d.ID, Score: d.LB()})
	}
	out.Sort()
	return out
}

func (h *DocHeap) init() {
	n := len(h.items)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for i, it := range h.items {
		it.HeapIdx = i
	}
}

func (h *DocHeap) pop() *cmap.DocState {
	n := len(h.items)
	min := h.items[0]
	h.items[0] = h.items[n-1]
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.siftDown(0)
	}
	for i, it := range h.items {
		it.HeapIdx = i
	}
	min.HeapIdx = -1
	return min
}

func (h *DocHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.items[l].CachedLB < h.items[min].CachedLB {
			min = l
		}
		if r < n && h.items[r].CachedLB < h.items[min].CachedLB {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}
