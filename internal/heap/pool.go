// sync.Pool-backed reuse of the k-sized heap backing arrays. Serving
// workloads run millions of queries at the paper's k = 1000; without
// reuse every query allocates (and the GC scans) a fresh k-entry slice
// per heap, per thread for the shared-nothing parallelizations. Pools
// are bucketed by capacity so a k=10 request does not pin a k=1000
// array.

package heap

import "sync"

// scorePools and docPools bucket pooled heaps by exact k. Distinct k
// values in one process are few (serving fixes k per endpoint), so a
// small sync.Map of per-k pools suffices.
var (
	scorePools sync.Map // int -> *sync.Pool of *ScoreHeap
	docPools   sync.Map // int -> *sync.Pool of *DocHeap
)

func poolFor(m *sync.Map, k int, mk func() any) *sync.Pool {
	if p, ok := m.Load(k); ok {
		return p.(*sync.Pool)
	}
	p, _ := m.LoadOrStore(k, &sync.Pool{New: mk})
	return p.(*sync.Pool)
}

// GetScore returns an empty ScoreHeap of capacity k, reusing a pooled
// backing array when one is available. Release with PutScore.
func GetScore(k int) *ScoreHeap {
	if k <= 0 {
		panic("heap: k must be positive")
	}
	h := poolFor(&scorePools, k, func() any { return NewScore(k) }).Get().(*ScoreHeap)
	h.items = h.items[:0]
	return h
}

// PutScore returns h to its pool. The caller must not use h afterwards;
// results must be materialized (Results copies) before releasing.
func PutScore(h *ScoreHeap) {
	if h == nil {
		return
	}
	h.items = h.items[:0]
	poolFor(&scorePools, h.k, func() any { return NewScore(h.k) }).Put(h)
}

// GetDoc returns an empty DocHeap of capacity k from the pool. Release
// with PutDoc.
func GetDoc(k int) *DocHeap {
	if k <= 0 {
		panic("heap: k must be positive")
	}
	h := poolFor(&docPools, k, func() any { return NewDoc(k) }).Get().(*DocHeap)
	h.items = h.items[:0]
	return h
}

// PutDoc returns h to its pool, clearing every candidate pointer up to
// the backing array's full capacity so pooled heaps do not pin whole
// candidate graphs across queries.
func PutDoc(h *DocHeap) {
	if h == nil {
		return
	}
	full := h.items[:cap(h.items)]
	clear(full)
	h.items = h.items[:0]
	poolFor(&docPools, h.k, func() any { return NewDoc(h.k) }).Put(h)
}
