package heap

import (
	"testing"

	"sparta/internal/cmap"
	"sparta/internal/model"
)

func TestScorePoolReuse(t *testing.T) {
	h := GetScore(5)
	if h.Len() != 0 {
		t.Fatalf("fresh pooled heap has %d items", h.Len())
	}
	for i := 0; i < 10; i++ {
		h.Push(model.DocID(i), model.Score(i+1))
	}
	PutScore(h)
	h2 := GetScore(5)
	if h2.Len() != 0 {
		t.Errorf("recycled heap not reset: %d items", h2.Len())
	}
	// The recycled heap must still work at its k.
	for i := 0; i < 20; i++ {
		h2.Push(model.DocID(i), model.Score(i+1))
	}
	if h2.Len() != 5 {
		t.Errorf("recycled heap len %d, want 5", h2.Len())
	}
	PutScore(h2)
	PutScore(nil) // nil must be a no-op
}

func TestDocPoolReuseAndClear(t *testing.T) {
	h := GetDoc(3)
	if h.Len() != 0 {
		t.Fatalf("fresh pooled doc heap has %d items", h.Len())
	}
	d := cmap.NewDocState(1, 2)
	d.SetScore(0, 10)
	h.UpdateInsert(d)
	PutDoc(h)
	h2 := GetDoc(3)
	if h2.Len() != 0 {
		t.Errorf("recycled doc heap not reset: %d items", h2.Len())
	}
	// The cleared backing array must not retain the DocState pointer.
	backing := h2.items[:cap(h2.items)]
	for i, p := range backing {
		if p != nil {
			t.Errorf("pooled doc heap retains candidate pointer at %d", i)
		}
	}
	PutDoc(h2)
	PutDoc(nil)
}

func TestPoolsSegregateByK(t *testing.T) {
	a := GetScore(4)
	PutScore(a)
	b := GetScore(8) // a different k must not hand back the k=4 heap
	for i := 0; i < 100; i++ {
		b.Push(model.DocID(i), model.Score(i+1))
	}
	if b.Len() != 8 {
		t.Errorf("k=8 pooled heap holds %d, want 8", b.Len())
	}
	PutScore(b)
}
