package sparta_test

import (
	"testing"

	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
)

// BenchmarkCursorTraversalRAM measures the charged cursors' raw
// per-posting cost with simulated I/O disabled — the block-decoded
// read path's CPU claim in isolation (one reader-accounting round
// trip per 64 postings, Next() a slice index). Sequential traversal
// is the win; sparse SkipTo trades a modest decode penalty for it.
func BenchmarkCursorTraversalRAM(b *testing.B) {
	mem := index.FromCorpus(corpus.New(corpus.Spec{
		Name: "trav", Docs: 20000, Vocab: 2000, ZipfS: 1.0,
		MeanDocLen: 150, MinDocLen: 5, Seed: 3,
	}))
	disk, err := diskindex.FromIndex(mem, 12, iomodel.RAMConfig())
	if err != nil {
		b.Fatal(err)
	}
	// busiest term: longest posting list
	best, bestDF := model.TermID(0), 0
	for t := 0; t < disk.NumTerms(); t++ {
		if df := disk.DF(model.TermID(t)); df > bestDF {
			best, bestDF = model.TermID(t), df
		}
	}
	b.Run("doc-next", func(b *testing.B) {
		var sum model.Score
		for i := 0; i < b.N; i++ {
			c := disk.DocCursor(best)
			for c.Next() {
				sum += c.Score()
			}
		}
		_ = sum
		b.ReportMetric(float64(bestDF), "postings/op")
	})
	b.Run("score-next", func(b *testing.B) {
		var sum model.Score
		for i := 0; i < b.N; i++ {
			c := disk.ScoreCursor(best)
			for c.Next() {
				sum += c.Score()
			}
		}
		_ = sum
	})
	b.Run("skipto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := disk.DocCursor(best)
			d := model.DocID(0)
			for c.SkipTo(d) {
				d = c.Doc() + 37
			}
		}
	})
}
