package sparta_test

import (
	"fmt"
	"testing"

	"sparta/internal/codec"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/xrand"
)

// BenchmarkCursorTraversalRAM measures the charged cursors' raw
// per-posting cost with simulated I/O disabled — the block-decoded
// read path's CPU claim in isolation (one reader-accounting round
// trip per 64 postings, Next() a slice index). Sequential traversal
// is the win; sparse SkipTo trades a modest decode penalty for it.
func BenchmarkCursorTraversalRAM(b *testing.B) {
	mem := index.FromCorpus(corpus.New(corpus.Spec{
		Name: "trav", Docs: 20000, Vocab: 2000, ZipfS: 1.0,
		MeanDocLen: 150, MinDocLen: 5, Seed: 3,
	}))
	disk, err := diskindex.FromIndex(mem, 12, iomodel.RAMConfig())
	if err != nil {
		b.Fatal(err)
	}
	// busiest term: longest posting list
	best, bestDF := model.TermID(0), 0
	for t := 0; t < disk.NumTerms(); t++ {
		if df := disk.DF(model.TermID(t)); df > bestDF {
			best, bestDF = model.TermID(t), df
		}
	}
	b.Run("doc-next", func(b *testing.B) {
		var sum model.Score
		for i := 0; i < b.N; i++ {
			c := disk.DocCursor(best)
			for c.Next() {
				sum += c.Score()
			}
		}
		_ = sum
		b.ReportMetric(float64(bestDF), "postings/op")
	})
	b.Run("score-next", func(b *testing.B) {
		var sum model.Score
		for i := 0; i < b.N; i++ {
			c := disk.ScoreCursor(best)
			for c.Next() {
				sum += c.Score()
			}
		}
		_ = sum
	})
	b.Run("skipto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := disk.DocCursor(best)
			d := model.DocID(0)
			for c.SkipTo(d) {
				d = c.Doc() + 37
			}
		}
	})
}

// benchBlocks synthesizes full 64-posting doc blocks with the given gap
// distribution: "uniform" draws small near-constant gaps (the dense
// head of a Zipfian list, the FOR fast path), "zipf" draws heavy-tailed
// gaps spanning one to five bytes per varint (the sparse tail, where
// stream-vbyte's table decode replaces per-byte branches).
func benchBlocks(dist string, nBlocks int) (bases []model.DocID, blocks [][]model.Posting) {
	rng := xrand.New(77)
	zipf := xrand.NewZipf(xrand.New(78), 1.2, 1<<20)
	next := model.DocID(0)
	for b := 0; b < nBlocks; b++ {
		base := next
		block := make([]model.Posting, 64)
		for i := range block {
			var gap model.DocID
			switch dist {
			case "uniform":
				gap = model.DocID(1 + rng.Intn(16))
			case "zipf":
				gap = model.DocID(1 + zipf.Next())
			}
			next += gap
			block[i] = model.Posting{Doc: next, Score: model.Score(1 + rng.Intn(1000))}
		}
		bases = append(bases, base)
		blocks = append(blocks, block)
	}
	return bases, blocks
}

// BenchmarkDecodeDocBlock measures the raw per-posting decode cost of
// each codec over identical block contents — the branchy byte-at-a-time
// LEB128 loop against the group codec's constant-stride FOR/stream-vbyte
// paths. ns/posting is the number the read path's CPU claim rests on.
func BenchmarkDecodeDocBlock(b *testing.B) {
	const nBlocks = 64
	for _, id := range []codec.ID{codec.LEB128, codec.Group} {
		for _, dist := range []string{"uniform", "zipf"} {
			bases, blocks := benchBlocks(dist, nBlocks)
			encoded := make([][]byte, nBlocks)
			total := 0
			for i, blk := range blocks {
				buf, err := codec.EncodeDoc(id, bases[i], blk)
				if err != nil {
					b.Fatal(err)
				}
				encoded[i] = buf
				total += len(blk)
			}
			b.Run(fmt.Sprintf("%s/%s", id, dist), func(b *testing.B) {
				out := make([]model.Posting, 0, 64)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j, buf := range encoded {
						dec, err := codec.DecodeDoc(id, bases[j], buf, len(blocks[j]), out[:0])
						if err != nil {
							b.Fatal(err)
						}
						out = dec
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/posting")
			})
		}
	}
}

// BenchmarkDecodeImpactBlock is the score-order counterpart: downward
// score deltas plus raw doc ids per block.
func BenchmarkDecodeImpactBlock(b *testing.B) {
	const nBlocks = 64
	for _, id := range []codec.ID{codec.LEB128, codec.Group} {
		for _, dist := range []string{"uniform", "zipf"} {
			_, blocks := benchBlocks(dist, nBlocks)
			type enc struct {
				ceil model.Score
				buf  []byte
				n    int
			}
			encoded := make([]enc, nBlocks)
			total := 0
			for i, blk := range blocks {
				// Impact blocks are non-increasing by score.
				imp := make([]model.Posting, len(blk))
				copy(imp, blk)
				for a := range imp {
					imp[a].Score = model.Score(10000 - 100*a)
				}
				ceil := imp[0].Score
				buf, err := codec.EncodeImpact(id, ceil, imp)
				if err != nil {
					b.Fatal(err)
				}
				encoded[i] = enc{ceil: ceil, buf: buf, n: len(imp)}
				total += len(imp)
			}
			b.Run(fmt.Sprintf("%s/%s", id, dist), func(b *testing.B) {
				out := make([]model.Posting, 0, 64)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, e := range encoded {
						dec, err := codec.DecodeImpact(id, e.ceil, e.buf, e.n, out[:0])
						if err != nil {
							b.Fatal(err)
						}
						out = dec
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*total), "ns/posting")
			})
		}
	}
}
