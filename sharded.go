// Sharded serving, re-exported from internal/shardserve: a query fans
// out to independent index shards under per-shard deadlines and the
// per-shard top-k lists merge into the global top-k. See the
// shardserve package documentation for the serving semantics
// (deadlines, hedging, health) and DESIGN.md for the equivalence
// argument.
package sparta

import (
	"context"
	"time"

	"sparta/internal/batchexec"
	"sparta/internal/shardserve"
)

type (
	// ShardGroup serves queries over a set of index shards by
	// scatter/gather. It implements Algorithm, so it drops into a
	// Searcher like any single-index strategy.
	ShardGroup = shardserve.Group
	// ShardGroupConfig parameterizes a ShardGroup (per-shard deadlines,
	// hedging, breaker, per-shard cache budget).
	ShardGroupConfig = shardserve.Config
	// ShardHedgeConfig tunes straggler hedging.
	ShardHedgeConfig = shardserve.HedgeConfig
	// Shard describes one index shard of a group.
	Shard = shardserve.Shard
	// ShardFactory builds one algorithm instance per shard view.
	ShardFactory = shardserve.Factory
	// ShardedStats is a scatter/gather query's aggregate statistics
	// plus the per-shard breakdown.
	ShardedStats = shardserve.ShardedStats
	// ShardRunStats is one shard's contribution to one query.
	ShardRunStats = shardserve.ShardRunStats
	// ShardCounters is one shard's aggregate serving counters,
	// including the per-replica breakdown and failover state.
	ShardCounters = shardserve.ShardCounters
	// ShardReplica is one replica backend of a shard: its view,
	// algorithm, store, and optional integrity-verification hook
	// consulted before the replica can be promoted to primary.
	ShardReplica = shardserve.Replica
	// ReplicaCounters is one replica's serving counters and breaker
	// state ("closed", "open", "half-open", or "corrupt").
	ReplicaCounters = shardserve.ReplicaCounters
	// ShardSetManifest is the verified shards.json manifest of a shard
	// set built by WriteDir/cmd/shardbuild: per-file SHA-256 digests
	// and a per-shard Merkle root.
	ShardSetManifest = shardserve.Manifest
	// BatchCounters is a snapshot of a batch executor's coalescing
	// activity (SearcherConfig.BatchWindow / ShardGroupConfig.
	// BatchWindow).
	BatchCounters = batchexec.Counters
)

// Aggregate stop reasons reported by scatter/gather queries.
const (
	// StopMerged: every shard delivered a complete result.
	StopMerged = shardserve.StopMerged
	// StopPartial: at least one shard was dropped; the merged top-k
	// covers the shards that answered.
	StopPartial = shardserve.StopPartial
)

// NewShardGroup assembles a group from already-opened shards.
func NewShardGroup(cfg ShardGroupConfig, shards ...Shard) (*ShardGroup, error) {
	return shardserve.New(cfg, shards...)
}

// ShardIndex partitions x into p document-range shards, opens each over
// its own simulated store (with a per-shard decoded-block cache when
// cfg.CacheBytes is set — the config path that attaches caches at open
// time), and serves them with factory's algorithm.
func ShardIndex(x *Index, p int, factory ShardFactory, cfg ShardGroupConfig) (*ShardGroup, error) {
	return shardserve.FromIndex(x, p, factory, cfg)
}

// OpenShardDir opens a shard set built by cmd/shardbuild (or
// shardserve.WriteDir), verifying every file against the manifest's
// digests before serving.
func OpenShardDir(dir string, factory ShardFactory, cfg ShardGroupConfig) (*ShardGroup, error) {
	return shardserve.OpenDir(dir, factory, cfg)
}

// VerifyShardDir recomputes every file digest and per-shard Merkle
// root of a shard set built by WriteDir/cmd/shardbuild and reports
// every mismatch (nil when the set is intact). `indexstat -verify` is
// the command-line form.
func VerifyShardDir(dir string) error { return shardserve.VerifySet(dir) }

// ShardedSearcher is a Searcher over a ShardGroup: the single-index
// serving concerns (timeout, admission, aggregate counters) wrap the
// scatter/gather layer, and the group's per-shard state stays
// reachable. Safe for concurrent use.
type ShardedSearcher struct {
	*Searcher
	group *ShardGroup
}

// NewShardedSearcher wraps g. Do not set cfg.PostingCache here — shard
// caches are per shard and attached at open time (ShardGroupConfig.
// CacheBytes); a group-level cache would collide keys across shards
// and queries would fail with ErrCacheNotAttached.
func NewShardedSearcher(g *ShardGroup, cfg SearcherConfig) *ShardedSearcher {
	return &ShardedSearcher{Searcher: NewSearcher(g, cfg), group: g}
}

// Group returns the underlying shard group.
func (s *ShardedSearcher) Group() *ShardGroup { return s.group }

// SearchShards is the introspective query path: SearchContext's
// evaluation with the per-shard breakdown, bypassing the Searcher's
// admission queue and timeout (pass a context deadline to bound it).
func (s *ShardedSearcher) SearchShards(ctx context.Context, q Query, opts Options) (TopK, ShardedStats, error) {
	return s.group.SearchShards(ctx, q, opts)
}

// ShardCounters returns every shard's counter snapshot.
func (s *ShardedSearcher) ShardCounters() []ShardCounters { return s.group.AllCounters() }

// Unsettled sums the unpaid simulated-I/O debt across shard stores —
// zero between queries (after Drain, when batching is enabled).
func (s *ShardedSearcher) Unsettled() time.Duration { return s.group.Unsettled() }

// Drain blocks until every dispatched batch — searcher-level and
// per-shard — has completed; afterwards all batch I/O is settled. Call
// it with no searches in flight. A no-op when batching is disabled.
func (s *ShardedSearcher) Drain() {
	s.Searcher.Drain()
	s.group.Drain()
}

// ShardBatchCounters aggregates the per-shard batch executors' counters
// (ShardGroupConfig.BatchWindow); the zero value when per-shard
// batching is disabled.
func (s *ShardedSearcher) ShardBatchCounters() BatchCounters { return s.group.BatchCounters() }

// RegisterMetrics registers both the searcher-level counters and the
// per-shard counters in r under prefix.
func (s *ShardedSearcher) RegisterMetrics(r *MetricsRegistry, prefix string) {
	s.Searcher.RegisterMetrics(r, prefix)
	s.group.RegisterMetrics(r, prefix)
}
