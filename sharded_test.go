package sparta_test

import (
	"context"
	"testing"
	"time"

	"sparta"
	"sparta/internal/algos/algotest"
	"sparta/internal/corpus"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
)

func shardedTestIndex(tb testing.TB) *index.Index {
	tb.Helper()
	c := corpus.New(corpus.Spec{
		Name: "sharded", Docs: 3000, Vocab: 800, ZipfS: 1.0,
		MeanDocLen: 50, MinDocLen: 5, Seed: 321,
	})
	return index.FromCorpus(c)
}

func TestShardedSearcherMatchesExact(t *testing.T) {
	x := shardedTestIndex(t)
	ram := iomodel.RAMConfig()
	g, err := sparta.ShardIndex(x, 4, func(v sparta.View) sparta.Algorithm {
		return sparta.New(v)
	}, sparta.ShardGroupConfig{IO: &ram, CacheBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := sparta.NewShardedSearcher(g, sparta.SearcherConfig{MaxConcurrent: 4})
	q := popularQuery(5)
	const k = 10
	want := sparta.Exact(x, q, k)
	got, st, err := s.Search(q, sparta.Options{K: k, Exact: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.StopReason != sparta.StopMerged || st.ShardsDropped != 0 {
		t.Fatalf("stats = %+v, want merged with no drops", st)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: got %v, want %v\ngot  %v\nwant %v", i, got[i], want[i], got, want)
		}
	}
	if c := s.Counters(); c.Queries != 1 {
		t.Fatalf("searcher counters = %+v, want 1 query", c)
	}
	if sc := s.ShardCounters(); len(sc) != 4 || sc[0].Queries != 1 {
		t.Fatalf("shard counters = %+v, want 4 shards with 1 query each", sc)
	}
	algotest.AssertSettled(t, "between queries", s)

	// The per-shard breakdown path.
	_, sst, err := s.SearchShards(context.Background(), q, sparta.Options{K: k, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sst.Shards) != 4 {
		t.Fatalf("per-shard breakdown has %d entries, want 4", len(sst.Shards))
	}

	// Metrics registration covers both layers.
	r := sparta.NewMetricsRegistry()
	s.RegisterMetrics(r, "serve")
	snap := r.Snapshot()
	if _, ok := snap["serve.queries"]; !ok {
		t.Fatalf("searcher metrics missing: %v", snap)
	}
	if _, ok := snap["serve.shard.0"]; !ok {
		t.Fatalf("shard metrics missing: %v", snap)
	}
}

func TestShardedSearcherTimeoutStillAnswers(t *testing.T) {
	x := shardedTestIndex(t)
	slow := iomodel.Config{
		BlockSize:   256,
		CacheBlocks: 16,
		SeqLatency:  200 * time.Microsecond,
		RandLatency: time.Millisecond,
		SleepBatch:  time.Microsecond,
	}
	g, err := sparta.ShardIndex(x, 4, func(v sparta.View) sparta.Algorithm {
		return sparta.New(v)
	}, sparta.ShardGroupConfig{IO: &slow, ShardTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := sparta.NewShardedSearcher(g, sparta.SearcherConfig{})
	got, st, err := s.Search(popularQuery(6), sparta.Options{K: 10, Exact: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsDropped == 0 || st.StopReason != sparta.StopPartial {
		t.Fatalf("stats = %+v, want partial with dropped shards under a 1ms shard timeout", st)
	}
	if len(got) > 10 {
		t.Fatalf("got %d results, want <= k", len(got))
	}
	algotest.AssertSettled(t, "after deadline-dropped shards", s)
}

func TestSearcherRejectsUnattachedCache(t *testing.T) {
	x := shardedTestIndex(t)
	cache := sparta.NewPostingCache(1 << 20)
	// Deliberately never attached: the in-memory index has nothing to
	// cache, and AttachPostingCache would report false.
	s := sparta.NewSearcher(sparta.New(x), sparta.SearcherConfig{PostingCache: cache})
	_, _, err := s.Search(popularQuery(3), sparta.Options{K: 5})
	if err != sparta.ErrCacheNotAttached {
		t.Fatalf("err = %v, want ErrCacheNotAttached", err)
	}
	if sparta.AttachPostingCache(x, cache) {
		t.Fatal("in-memory index accepted a posting cache")
	}
	// model.Query zero-term path must not mask the validation either.
	if _, _, err := s.Search(model.Query{}, sparta.Options{}); err != sparta.ErrCacheNotAttached {
		t.Fatalf("err = %v, want ErrCacheNotAttached", err)
	}
}
