package sparta

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparta/internal/batchexec"
	"sparta/internal/fusedexec"
	"sparta/internal/metrics"
	"sparta/internal/model"
	"sparta/internal/postings"
	"sparta/internal/topk"
)

// ErrCacheNotAttached is returned by a Searcher whose configured
// PostingCache was never attached to an index view: every lookup would
// miss, which silently reports a 0% hit rate instead of the
// misconfiguration it is. Attach the cache first (AttachPostingCache),
// or open shards with Config.CacheBytes, which attaches at open time.
var ErrCacheNotAttached = errors.New("sparta: SearcherConfig.PostingCache set but not attached to any index view (AttachPostingCache)")

// ErrAdmissionShed is returned by a Searcher that dropped a query at
// admission under load: the concurrency limit was saturated and the
// query's remaining context budget was smaller than the observed
// admission-queue wait (SearcherConfig.ShedQuantile), so running it
// could only produce a result after its deadline. Shedding early
// returns the capacity to queries that can still meet theirs.
var ErrAdmissionShed = errors.New("sparta: query shed at admission (queue wait exceeds remaining context budget)")

// SearcherConfig parameterizes a Searcher. The zero value disables
// every knob: no timeout, unbounded concurrency, no observer.
type SearcherConfig struct {
	// Timeout bounds each query's execution. A query that exceeds it
	// returns its best-so-far partial top-k with Stats.StopReason
	// "deadline" and a nil error (the anytime contract). Zero means no
	// timeout; a caller-supplied context deadline still applies.
	Timeout time.Duration

	// MaxConcurrent caps queries executing at once. Excess queries wait
	// in admission order; a query whose context is cancelled while
	// waiting returns an empty result with StopReason "cancelled" (or
	// "deadline") and a nil error, without ever executing. Zero means
	// unbounded.
	MaxConcurrent int

	// Observer, when non-nil, receives execution events for every query
	// that does not carry its own Options.Observer.
	Observer Observer

	// PostingCache, when non-nil, is the decoded-block cache shared by
	// this searcher's queries; its hit/miss/bytes counters appear in
	// Counters(). The cache serves cursors only once attached to the
	// index view (AttachPostingCache) — this field does not attach it,
	// because the Searcher wraps an Algorithm, not the view beneath it.
	// A cache that is supplied here but never attached is a
	// misconfiguration: queries fail with ErrCacheNotAttached rather
	// than silently running uncached. (The sharded serving path attaches
	// per-shard caches itself at open time via Config.CacheBytes.)
	PostingCache *PostingCache

	// ShedQuantile enables load-aware admission: when MaxConcurrent is
	// saturated and a query carries a context deadline, the query is
	// shed (ErrAdmissionShed, StopReason "shed") if its remaining budget
	// is smaller than this quantile of recently observed admission
	// waits — it would time out in the queue, so dropping it immediately
	// frees its slot-wait for queries that can still answer in time.
	// 0 disables shedding (every query waits, as before); 0.9 sheds
	// queries whose budget is below the p90 observed wait. Queries
	// without a deadline never shed.
	ShedQuantile float64

	// BatchWindow enables multi-query batch execution (package
	// batchexec): concurrent queries arriving within this window are
	// coalesced into one batch that shares a cursor warm-up pass for
	// overlapping terms and single-flights its posting-block fills.
	// Zero (the default) disables batching — the serving path is then
	// byte-identical to an unbatched Searcher. For sharded serving,
	// prefer ShardGroupConfig.BatchWindow, which batches per shard.
	BatchWindow time.Duration
	// MaxBatch caps the batch size (default 16; see batchexec.Config).
	MaxBatch int
	// BatchWarmBlocks is the per-term warm-up depth of a batch (default
	// 2; negative disables warm-up). Warm-up also needs BatchWarmView.
	BatchWarmBlocks int
	// BatchWarmView is the index view batches warm. It must be the view
	// the wrapped algorithm reads (the Searcher wraps an Algorithm, not
	// the view beneath it, so it cannot discover the view itself). Views
	// that cannot warm (in-memory ones) are ignored.
	BatchWarmView View

	// FusedExec enables fused multi-query execution (package fusedexec)
	// for closed batches: each term shared by two or more batch members
	// is traversed once, scoring every subscriber in a single pass, with
	// per-member early detach and an exact resolution step that keeps
	// results byte-identical to sequential execution. Requires
	// BatchWindow > 0 and a BatchWarmView that supports block walking
	// (postings.BlockWalker — the disk and compressed indexes do); when
	// the view does not, batches silently run the plain per-member path.
	// Fused batches skip the warm-up pass: the fused traversal itself is
	// the warm, hot-admission pass.
	FusedExec bool
}

// SearcherCounters is a point-in-time snapshot of a Searcher's
// aggregate activity.
type SearcherCounters struct {
	// Queries is the number of queries finished (admitted or not).
	Queries int64
	// Errors is the number of queries that returned a non-nil error.
	Errors int64
	// Cancelled / Deadline count queries that stopped early because
	// their context was cancelled / its deadline expired — including
	// queries cancelled while waiting for admission.
	Cancelled int64
	Deadline  int64
	// Rejected counts the subset of Cancelled+Deadline that never ran
	// because admission was interrupted.
	Rejected int64
	// Shed counts queries dropped by load-aware admission (their
	// remaining context budget was below the observed admission-wait
	// quantile; see SearcherConfig.ShedQuantile). Disjoint from
	// Rejected: shed queries return ErrAdmissionShed without waiting.
	Shed int64
	// InFlight is the number of queries currently executing or waiting
	// for admission.
	InFlight int64
	// Postings is the total posting count processed.
	Postings int64
	// TotalLatency is the summed wall-clock duration of finished
	// queries (admission wait included); TotalLatency/Queries is the
	// mean latency.
	TotalLatency time.Duration
	// CacheHits / CacheMisses / CacheBytes / CacheAdmissionRejects
	// mirror the configured PostingCache's counters (zero when none is
	// configured).
	CacheHits             int64
	CacheMisses           int64
	CacheBytes            int64
	CacheAdmissionRejects int64
	// CacheDupFillsSuppressed / CacheInFlightFills mirror the cache's
	// single-flight gate: fills served by a concurrent decode instead of
	// duplicating it, and fills currently executing.
	CacheDupFillsSuppressed int64
	CacheInFlightFills      int64
}

// CacheHitRate returns CacheHits/(CacheHits+CacheMisses), or 0 before
// any lookup.
func (c SearcherCounters) CacheHitRate() float64 {
	if c.CacheHits+c.CacheMisses == 0 {
		return 0
	}
	return float64(c.CacheHits) / float64(c.CacheHits+c.CacheMisses)
}

// Searcher wraps any Algorithm with the serving-side concerns of §5.3's
// latency SLAs: a per-query timeout, a concurrent-query admission
// limit, and aggregate counters. It implements Algorithm itself, so it
// can be dropped into the scheduler or the benchmark harness, and it is
// safe for concurrent use.
type Searcher struct {
	alg   topk.Algorithm
	cfg   SearcherConfig
	sem   chan struct{}       // nil when MaxConcurrent == 0
	batch *batchexec.Executor // non-nil when BatchWindow > 0 (== alg)
	waits waitRing            // recent admission waits, for shedding

	queries   atomic.Int64
	errors    atomic.Int64
	cancelled atomic.Int64
	deadline  atomic.Int64
	rejected  atomic.Int64
	shed      atomic.Int64
	inFlight  atomic.Int64
	postings  atomic.Int64
	latencyNs atomic.Int64
}

// NewSearcher wraps alg.
func NewSearcher(alg topk.Algorithm, cfg SearcherConfig) *Searcher {
	s := &Searcher{alg: alg, cfg: cfg}
	if cfg.BatchWindow > 0 {
		bcfg := batchexec.Config{
			Window:     cfg.BatchWindow,
			MaxBatch:   cfg.MaxBatch,
			WarmBlocks: cfg.BatchWarmBlocks,
		}
		if w, ok := cfg.BatchWarmView.(postings.TermWarmer); ok {
			bcfg.Warmer = w
		}
		if cfg.FusedExec {
			if v, ok := cfg.BatchWarmView.(postings.View); ok && fusedexec.Supported(v) {
				bcfg.Fused = fusedexec.New(alg, v)
			}
		}
		s.batch = batchexec.New(alg, bcfg)
		s.alg = s.batch
	}
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return s
}

// BatchCounters returns the batch-execution counters, or the zero value
// when batching is disabled.
func (s *Searcher) BatchCounters() batchexec.Counters {
	if s.batch == nil {
		return batchexec.Counters{}
	}
	return s.batch.Counters()
}

// Drain blocks until every dispatched batch (member queries and warm-up
// passes) has completed; afterwards all batch I/O is settled. Call it
// with no searches in flight — shutdown and test assertions. A no-op
// when batching is disabled.
func (s *Searcher) Drain() {
	if s.batch != nil {
		s.batch.Drain()
	}
}

// Name implements Algorithm.
func (s *Searcher) Name() string { return s.alg.Name() }

// Search implements Algorithm; it is SearchContext with a background
// context (the configured Timeout still applies).
func (s *Searcher) Search(q Query, opts Options) (TopK, Stats, error) {
	return s.SearchContext(context.Background(), q, opts)
}

// SearchContext implements Algorithm: admission under MaxConcurrent,
// then execution under the tighter of ctx and the configured Timeout.
// Cancellation — at admission or mid-query — returns a nil error with
// StopReason "cancelled" or "deadline"; errors are reserved for real
// failures (e.g. memory-budget aborts).
func (s *Searcher) SearchContext(ctx context.Context, q Query, opts Options) (TopK, Stats, error) {
	if s.cfg.PostingCache != nil && !s.cfg.PostingCache.Attached() {
		return nil, Stats{}, ErrCacheNotAttached
	}
	start := time.Now()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	if s.sem != nil {
		select {
		case s.sem <- struct{}{}: // free slot: no queue, no wait recorded
			defer func() { <-s.sem }()
		default:
			// Saturated. Load-aware admission: if the queue's recent
			// waits say this query would outlive its budget in line,
			// shed it now instead of letting it time out holding a
			// place other queries could use.
			if q := s.cfg.ShedQuantile; q > 0 {
				if dl, ok := ctx.Deadline(); ok {
					if est := s.waits.quantile(q); est > 0 && time.Until(dl) < est {
						st := Stats{StopReason: topk.StopShed, Duration: time.Since(start)}
						s.shed.Add(1)
						s.account(st, ErrAdmissionShed)
						return model.TopK{}, st, ErrAdmissionShed
					}
				}
			}
			waitStart := time.Now()
			select {
			case s.sem <- struct{}{}:
				s.waits.record(time.Since(waitStart))
				defer func() { <-s.sem }()
			case <-ctx.Done():
				st := Stats{StopReason: stopReasonFor(ctx.Err()), Duration: time.Since(start)}
				s.rejected.Add(1)
				s.waits.record(time.Since(waitStart))
				s.account(st, nil)
				return model.TopK{}, st, nil
			}
		}
	}

	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	if opts.Observer == nil {
		opts.Observer = s.cfg.Observer
	}

	res, st, err := s.alg.SearchContext(ctx, q, opts)
	st.Duration = time.Since(start) // admission wait included
	s.account(st, err)
	return res, st, err
}

func (s *Searcher) account(st Stats, err error) {
	s.queries.Add(1)
	s.postings.Add(st.Postings)
	s.latencyNs.Add(int64(st.Duration))
	if err != nil {
		s.errors.Add(1)
	}
	switch st.StopReason {
	case topk.StopCancelled:
		s.cancelled.Add(1)
	case topk.StopDeadline:
		s.deadline.Add(1)
	}
}

// Counters returns a snapshot of the aggregate counters. The snapshot
// is not atomic across fields (each field is individually consistent).
func (s *Searcher) Counters() SearcherCounters {
	c := SearcherCounters{
		Queries:      s.queries.Load(),
		Errors:       s.errors.Load(),
		Cancelled:    s.cancelled.Load(),
		Deadline:     s.deadline.Load(),
		Rejected:     s.rejected.Load(),
		Shed:         s.shed.Load(),
		InFlight:     s.inFlight.Load(),
		Postings:     s.postings.Load(),
		TotalLatency: time.Duration(s.latencyNs.Load()),
	}
	if s.cfg.PostingCache != nil {
		cs := s.cfg.PostingCache.Snapshot()
		c.CacheHits, c.CacheMisses, c.CacheBytes = cs.Hits, cs.Misses, cs.Bytes
		c.CacheAdmissionRejects = cs.AdmissionRejects
		c.CacheDupFillsSuppressed = cs.DupFillsSuppressed
		c.CacheInFlightFills = cs.InFlightFills
	}
	return c
}

// RegisterMetrics registers the searcher's counters in r under prefix
// ("<prefix>.queries", "<prefix>.cache_hit_rate", ...), evaluated
// lazily at snapshot time.
func (s *Searcher) RegisterMetrics(r *metrics.Registry, prefix string) {
	if prefix != "" && !strings.HasSuffix(prefix, ".") {
		prefix += "."
	}
	r.RegisterFunc(prefix+"queries", func() any { return s.queries.Load() })
	r.RegisterFunc(prefix+"errors", func() any { return s.errors.Load() })
	r.RegisterFunc(prefix+"cancelled", func() any { return s.cancelled.Load() })
	r.RegisterFunc(prefix+"deadline", func() any { return s.deadline.Load() })
	r.RegisterFunc(prefix+"rejected", func() any { return s.rejected.Load() })
	r.RegisterFunc(prefix+"shed", func() any { return s.shed.Load() })
	r.RegisterFunc(prefix+"in_flight", func() any { return s.inFlight.Load() })
	r.RegisterFunc(prefix+"postings", func() any { return s.postings.Load() })
	r.RegisterFunc(prefix+"latency_total_ns", func() any { return s.latencyNs.Load() })
	r.RegisterFunc(prefix+"mean_latency_ns", func() any {
		q := s.queries.Load()
		if q == 0 {
			return int64(0)
		}
		return s.latencyNs.Load() / q
	})
	if s.cfg.PostingCache != nil {
		r.RegisterFunc(prefix+"cache", func() any { return s.cfg.PostingCache.Snapshot() })
		r.RegisterFunc(prefix+"cache_hit_rate", func() any { return s.Counters().CacheHitRate() })
	}
	if s.batch != nil {
		s.batch.RegisterMetrics(r, prefix+"batch")
	}
}

// waitRingSize is how many recent admission waits the shedding
// estimator remembers; like the shard hedging ring, small and recent
// beats large and stale under shifting load.
const waitRingSize = 64

// waitRing is a fixed ring of recently observed admission-queue waits.
// Only queries that actually queued record a wait, so an idle searcher's
// estimate decays to nothing as old waits rotate out.
type waitRing struct {
	mu  sync.Mutex
	buf [waitRingSize]time.Duration
	n   int // filled entries (≤ waitRingSize)
	pos int // next write
}

func (w *waitRing) record(d time.Duration) {
	w.mu.Lock()
	w.buf[w.pos] = d
	w.pos = (w.pos + 1) % waitRingSize
	if w.n < waitRingSize {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile (0 < q ≤ 1) of the remembered waits,
// or 0 when none have been recorded yet — shedding self-disables until
// the queue has history.
func (w *waitRing) quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.n
	var tmp [waitRingSize]time.Duration
	copy(tmp[:n], w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	s := tmp[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return s[idx]
}

// stopReasonFor maps a context error to the corresponding stop reason.
func stopReasonFor(err error) string {
	if err == context.DeadlineExceeded {
		return topk.StopDeadline
	}
	return topk.StopCancelled
}

var _ topk.Algorithm = (*Searcher)(nil)
