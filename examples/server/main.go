// Server: a minimal web-search service over the library — the
// deployment surface the paper's latency SLAs are about (§5.3 cites
// the 250 ms interactive budget), now served scatter/gather over a
// sharded index.
//
// On startup it builds a small synthetic index, partitions it into
// document-range shards — each backed by independent replicas with
// their own simulated stores and decoded-block caches — and serves
//
//	GET /search?q=<terms>&k=10&algo=sparta|pbmw|pjass&mode=exact|high
//	GET /stats
//
// Each algorithm runs through a sparta.ShardedSearcher: the Searcher
// layer enforces the 250 ms SLA, the concurrent-query cap, and
// load-aware shedding (a query whose remaining budget is smaller than
// the observed admission-queue wait gets a 503 instead of a guaranteed
// timeout), while the shard group underneath coalesces concurrent
// queries into per-shard batches (shared warm-up, single-flight block
// fills), fans every query out to all shards under per-shard
// deadlines, hedges stragglers, and merges whatever the shards
// deliver — a slow shard degrades the answer (reported as
// shards_dropped), never blocks it. A disconnecting client cancels its
// query through the request context.
//
// A fourth backend, algo=live, serves a WAL-backed segmented live
// index that accepts writes while it serves:
//
//	POST /ingest?doc=<tokens>
//
// appends a document (comma- or space-separated tokens), which is
// crash-durable and searchable by the time the request returns. The
// memtable flushes into immutable on-disk segments in the background
// and a compactor merges small segments, all without pausing queries
// (they finish on their epoch snapshot).
//
// /stats is one metrics-registry snapshot: every searcher's serving
// counters (including shed), every shard's health/cache counters
// (including single-flight duplicate-fill suppression and the
// per-replica breaker states, retries, and promotions of the failover
// machinery), the per-shard batch coalescing counters, and the live
// index's segment lifecycle gauges ("live.segments",
// "live.compactions", ...), flat JSON.
//
// A fifth backend, algo=remote, appears when -remote lists running
// cmd/shardserver processes (comma-separated, one address per shard):
// the same scatter/gather group, but every shard is another process
// reached over the shardrpc transport, and each server's counter
// snapshot is folded into /stats under "remote.server.<i>".
//
// On SIGINT/SIGTERM the server stops accepting, drains in-flight
// queries through http.Server.Shutdown under a drain deadline (so
// every query settles its simulated I/O before exit), then closes the
// remote clients and the live index.
//
//	go run ./examples/server &
//	curl 'localhost:8640/search?q=t12,t733,t5021&algo=sparta&mode=high'
//	curl -X POST 'localhost:8640/ingest?doc=t12,t12,t733'
//	curl 'localhost:8640/search?q=t12,t733&algo=live&mode=exact'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sparta"
	"sparta/internal/algos/bmw"
	"sparta/internal/algos/jass"
	"sparta/internal/core"
	"sparta/internal/corpus"
	"sparta/internal/index"
	"sparta/internal/model"
	"sparta/internal/topk"
)

const (
	listenAddr = "localhost:8640"
	poolSize   = 12
	// numShards is the scatter/gather width.
	numShards = 4
	// numReplicas backs every shard with independent replicas: hedges
	// race a different replica instead of re-asking the straggler,
	// transient errors fail over with backoff, and a shard whose
	// primary goes dark promotes a verified replica. Per-replica
	// breaker state shows up under /stats as shard.<i>.replicas.
	numReplicas = 2
	// queryTimeout is the serving SLA (§5.3 cites the 250 ms
	// interactive budget); queries hitting it return partial results
	// with stop reason "deadline".
	queryTimeout = 250 * time.Millisecond
	// shardTimeout bounds each shard's share of a query: a straggling
	// shard is dropped (its partial merged in) rather than spending the
	// whole SLA.
	shardTimeout = 100 * time.Millisecond
	// postingCacheBytes bounds the decoded-block caches; Zipfian query
	// traffic keeps hot terms resident. The budget is split across the
	// per-shard caches.
	postingCacheBytes = 16 << 20
	// batchWindow coalesces queries arriving within 200µs of each other
	// into per-shard batches: with FusedExec on, each term shared by two
	// or more batch members is traversed once, scoring every subscriber
	// in a single pass ("serve.<algo>.batch.fused_*" under /stats); the
	// rest share a warm-up pass and single-flight block fills. Well under
	// the SLA, so the latency cost is negligible against the duplicate
	// work it removes.
	batchWindow = 200 * time.Microsecond
	// maxBatch caps a coalesced batch; a full batch launches early.
	maxBatch = 8
	// shedQuantile: shed a query at admission when its remaining context
	// budget is below the median observed admission-queue wait.
	shedQuantile = 0.5
	// liveSeedDocs seeds the live backend with a prefix of the corpus so
	// algo=live answers queries before the first /ingest arrives.
	liveSeedDocs = 2_000
	// liveFlushDocs is the live backend's memtable flush threshold.
	liveFlushDocs = 1_000
	// drainTimeout bounds graceful shutdown: in-flight queries get up to
	// one full SLA to finish (plus headroom for the response writes)
	// before Shutdown gives up on the connections still open.
	drainTimeout = queryTimeout + 250*time.Millisecond
)

// searcher is the query surface shared by the sharded searchers and
// the single-index searcher over the live index.
type searcher interface {
	Name() string
	SearchContext(ctx context.Context, q sparta.Query, opts sparta.Options) (sparta.TopK, sparta.Stats, error)
	RegisterMetrics(r *sparta.MetricsRegistry, prefix string)
}

type server struct {
	mem       *index.Index
	live      *sparta.LiveIndex
	searchers map[string]searcher
	registry  *sparta.MetricsRegistry
}

func main() {
	remote := flag.String("remote", "",
		"comma-separated shardserver addresses (one per shard) to serve as algo=remote")
	flag.Parse()

	spec := corpus.Spec{
		Name: "web", Docs: 10_000, Vocab: 20_000, ZipfS: 1.0,
		MeanDocLen: 120, MinDocLen: 8, QualitySigma: 1.0, Seed: 42,
	}
	log.Printf("building %d-doc index...", spec.Docs)
	mem := index.FromCorpus(corpus.New(spec))

	gcfg := sparta.ShardGroupConfig{
		CacheBytes:     postingCacheBytes / numShards,
		ShardTimeout:   shardTimeout,
		BudgetFraction: 0.9, // leave headroom for merge + resolution
		Hedge:          sparta.ShardHedgeConfig{Enabled: true},
		Replicas:       numReplicas,
		TripAfter:      3,
		BatchWindow:    batchWindow,
		MaxBatch:       maxBatch,
		FusedExec:      true,
	}
	scfg := sparta.SearcherConfig{
		Timeout:       queryTimeout,
		MaxConcurrent: poolSize,
		ShedQuantile:  shedQuantile,
	}
	mk := func(factory sparta.ShardFactory) *sparta.ShardedSearcher {
		g, err := sparta.ShardIndex(mem, numShards, factory, gcfg)
		if err != nil {
			log.Fatal(err)
		}
		return sparta.NewShardedSearcher(g, scfg)
	}

	// The live backend: the same corpus generator feeds the first
	// liveSeedDocs documents through the ingest path (so term ids line
	// up with the static backends' dictionary), then /ingest takes over.
	liveDir, err := os.MkdirTemp("", "sparta-live-")
	if err != nil {
		log.Fatal(err)
	}
	live, err := sparta.OpenLive(liveDir, sparta.LiveConfig{FlushDocs: liveFlushDocs})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("live-ingesting %d seed docs into %s...", liveSeedDocs, liveDir)
	c := corpus.New(spec)
	for i := 0; i < liveSeedDocs; i++ {
		if _, err := live.AppendBag(c.Doc(model.DocID(i))); err != nil {
			log.Fatal(err)
		}
	}

	s := &server{
		mem:      mem,
		live:     live,
		registry: sparta.NewMetricsRegistry(),
		searchers: map[string]searcher{
			"sparta": mk(func(v sparta.View) sparta.Algorithm { return core.New(v) }),
			"pbmw":   mk(func(v sparta.View) sparta.Algorithm { return bmw.NewPBMW(v) }),
			"pjass":  mk(func(v sparta.View) sparta.Algorithm { return jass.NewP(v) }),
			"live":   sparta.NewSearcher(sparta.New(live), scfg),
		},
	}

	// The remote backend: every shard is a cmd/shardserver process; the
	// group treats each address as that shard's (only) replica. Shard
	// caches and batch coalescing live server-side, so the group config
	// here carries only the scatter/gather serving knobs.
	var remoteClients []*sparta.RemoteShard
	if *remote != "" {
		var addrs [][]string
		for _, a := range strings.Split(*remote, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, []string{a})
			}
		}
		g, clients, err := sparta.DialShards(addrs, sparta.ShardGroupConfig{
			ShardTimeout:   shardTimeout,
			BudgetFraction: 0.9,
			Hedge:          sparta.ShardHedgeConfig{Enabled: true},
			TripAfter:      3,
		}, sparta.RemoteShardConfig{})
		if err != nil {
			log.Fatal(err)
		}
		remoteClients = clients
		s.searchers["remote"] = sparta.NewShardedSearcher(g, scfg)
		// Fold every shardserver's counter snapshot into /stats; a dead
		// server reports its error instead of blocking the snapshot.
		for i, cl := range clients {
			cl := cl
			s.registry.RegisterFunc(fmt.Sprintf("remote.server.%d", i), func() any {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				defer cancel()
				st, err := cl.ServerStats(ctx)
				if err != nil {
					return map[string]any{"addr": cl.Addr(), "error": err.Error()}
				}
				return st
			})
		}
		log.Printf("remote backend: %d shardserver(s) at %s", len(addrs), *remote)
	}

	s.registry.RegisterFunc("index.docs", func() any { return mem.NumDocs() })
	s.registry.RegisterFunc("index.terms", func() any { return mem.NumTerms() })
	s.registry.RegisterFunc("index.postings", func() any { return mem.TotalPostings() })
	for name, sr := range s.searchers {
		sr.RegisterMetrics(s.registry, "serve."+name)
	}
	live.RegisterMetrics(s.registry, "live")

	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /stats", s.handleStats)
	log.Printf("serving %d shards on http://%s  (try /search?q=t12,t733,t5021&algo=sparta&mode=high)",
		numShards, listenAddr)

	httpSrv := &http.Server{Addr: listenAddr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	<-ctx.Done()
	stop()

	// Graceful shutdown: stop accepting, let in-flight queries finish
	// (and settle their simulated I/O) under the drain deadline, then
	// release the remote connections and the live index's WAL.
	log.Printf("shutting down: draining in-flight requests (budget %v)...", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	for name, sr := range s.searchers {
		ss, ok := sr.(*sparta.ShardedSearcher)
		if !ok {
			continue
		}
		if d := ss.Group().Unsettled(); d != 0 {
			log.Printf("warning: backend %q exiting with %v unsettled simulated I/O", name, d)
		}
	}
	sparta.CloseShards(remoteClients)
	if err := live.Close(); err != nil {
		log.Printf("closing live index: %v", err)
	}
	log.Printf("bye")
}

type searchResponse struct {
	Algo          string        `json:"algo"`
	Query         []int         `json:"query"`
	K             int           `json:"k"`
	LatencyMS     float64       `json:"latency_ms"`
	Stop          string        `json:"stop"`
	Postings      int64         `json:"postings"`
	ShardsDropped int           `json:"shards_dropped"`
	Results       []resultEntry `json:"results"`
}

type resultEntry struct {
	Doc   uint32  `json:"doc"`
	Score float64 `json:"score"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	algoName := r.URL.Query().Get("algo")
	if algoName == "" {
		algoName = "sparta"
	}
	alg, ok := s.searchers[algoName]
	if !ok {
		http.Error(w, "algo must be sparta|pbmw|pjass|live (or remote with -remote)", http.StatusBadRequest)
		return
	}

	// The live backend grows its own dictionary as documents arrive, so
	// its term-id range is independent of the static build's.
	numTerms := s.mem.NumTerms()
	if algoName == "live" {
		numTerms = s.live.NumTerms()
	}
	q, err := parseQuery(r.URL.Query().Get("q"), numTerms)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil || k < 1 || k > 1000 {
			http.Error(w, "k must be 1..1000", http.StatusBadRequest)
			return
		}
	}

	opts := topk.Options{K: k}
	switch r.URL.Query().Get("mode") {
	case "", "high":
		opts.Delta = 5 * time.Millisecond
		opts.BoostF = 2
		opts.FracP = 0.3
	case "exact":
		opts.Exact = true
	default:
		http.Error(w, "mode must be exact|high", http.StatusBadRequest)
		return
	}
	if err := opts.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Intra-query parallelism equals the term count (the paper's
	// configuration); the Searcher's MaxConcurrent bounds how many
	// queries hold workers at once.
	opts.Threads = len(q)
	if opts.Threads > poolSize {
		opts.Threads = poolSize
	}

	// The request context propagates client disconnects; the Searcher
	// layers its 250 ms SLA timeout on top, and each shard gets the
	// tighter of shardTimeout and its share of what remains.
	res, st, err := alg.SearchContext(r.Context(), q, opts)
	if errors.Is(err, sparta.ErrAdmissionShed) {
		// Load shedding: executing this query could only produce a result
		// after its deadline — tell the client to back off instead.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded: query shed at admission", http.StatusServiceUnavailable)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := searchResponse{
		Algo:          alg.Name(),
		K:             k,
		LatencyMS:     float64(st.Duration.Microseconds()) / 1000,
		Stop:          st.StopReason,
		Postings:      st.Postings,
		ShardsDropped: st.ShardsDropped,
	}
	for _, term := range q {
		resp.Query = append(resp.Query, int(term))
	}
	for _, rr := range res {
		resp.Results = append(resp.Results, resultEntry{
			Doc: uint32(rr.Doc), Score: rr.Score.Float(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

type ingestResponse struct {
	Doc          uint32 `json:"doc"`
	Docs         int    `json:"docs"`
	Terms        int    `json:"terms"`
	Segments     int    `json:"segments"`
	MemtableDocs int    `json:"memtable_docs"`
}

// handleIngest appends one document to the live index. The document is
// a bag of tokens ("doc" parameter, comma- or space-separated); new
// tokens grow the live dictionary. The append is in the WAL and
// searchable under algo=live when the response is written.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	raw := r.FormValue("doc")
	if strings.TrimSpace(raw) == "" {
		http.Error(w, "missing doc parameter", http.StatusBadRequest)
		return
	}
	tokens := strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == ' ' })
	doc, err := s.live.AppendTokens(tokens)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ingestResponse{
		Doc:          uint32(doc),
		Docs:         s.live.NumDocs(),
		Terms:        s.live.NumTerms(),
		Segments:     len(s.live.SegmentStats()),
		MemtableDocs: s.live.MemtableDocs(),
	})
}

// handleStats serves the metrics registry: searcher-level serving
// counters ("serve.sparta.queries") and per-shard health and cache
// counters ("serve.sparta.shard.2") in one flat, sorted JSON document.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.registry.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseQuery accepts comma- or space-separated term ids, optionally
// prefixed "t" ("t12,t733" or "12 733").
func parseQuery(raw string, numTerms int) (model.Query, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("missing q parameter")
	}
	fields := strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == ' ' })
	var q model.Query
	for _, f := range fields {
		f = strings.TrimPrefix(strings.TrimSpace(f), "t")
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad term %q", f)
		}
		if id < 0 || id >= numTerms {
			return nil, fmt.Errorf("term %d out of range (0..%d)", id, numTerms-1)
		}
		q = append(q, model.TermID(id))
	}
	if len(q) > 12 {
		q = q[:12] // the paper's maximum evaluated length
	}
	return q, nil
}
