// Server: a minimal web-search service over the library — the
// deployment surface the paper's latency SLAs are about (§5.3 cites
// the 250 ms interactive budget).
//
// On startup it builds a small synthetic index; then it serves
//
//	GET /search?q=<terms>&k=10&algo=sparta|pbmw|pjass&mode=exact|high
//	GET /stats
//
// with per-query latency, recall-free stats, and storage counters in
// the JSON response. Queries run with intra-query parallelism equal to
// their term count, admission-controlled by a shared worker pool as in
// the paper's throughput methodology.
//
//	go run ./examples/server &
//	curl 'localhost:8640/search?q=t12,t733,t5021&algo=sparta&mode=high'
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sparta/internal/algos/bmw"
	"sparta/internal/algos/jass"
	"sparta/internal/core"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/topk"
)

const (
	listenAddr = "localhost:8640"
	poolSize   = 12
)

type server struct {
	mem    *index.Index
	disk   *diskindex.Index
	tokens chan struct{} // shared worker pool (FCFS admission)
}

func main() {
	spec := corpus.Spec{
		Name: "web", Docs: 10_000, Vocab: 20_000, ZipfS: 1.0,
		MeanDocLen: 120, MinDocLen: 8, QualitySigma: 1.0, Seed: 42,
	}
	log.Printf("building %d-doc index...", spec.Docs)
	mem := index.FromCorpus(corpus.New(spec))
	disk, err := diskindex.FromIndex(mem, diskindex.DefaultShards, iomodel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	s := &server{mem: mem, disk: disk, tokens: make(chan struct{}, poolSize)}
	for i := 0; i < poolSize; i++ {
		s.tokens <- struct{}{}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /stats", s.handleStats)
	log.Printf("serving on http://%s  (try /search?q=t12,t733,t5021&algo=sparta&mode=high)", listenAddr)
	log.Fatal(http.ListenAndServe(listenAddr, mux))
}

type searchResponse struct {
	Algo      string        `json:"algo"`
	Query     []int         `json:"query"`
	K         int           `json:"k"`
	LatencyMS float64       `json:"latency_ms"`
	Stop      string        `json:"stop"`
	Postings  int64         `json:"postings"`
	Results   []resultEntry `json:"results"`
}

type resultEntry struct {
	Doc   uint32  `json:"doc"`
	Score float64 `json:"score"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r.URL.Query().Get("q"), s.disk.NumTerms())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil || k < 1 || k > 1000 {
			http.Error(w, "k must be 1..1000", http.StatusBadRequest)
			return
		}
	}

	var alg topk.Algorithm
	switch r.URL.Query().Get("algo") {
	case "", "sparta":
		alg = core.New(s.disk)
	case "pbmw":
		alg = bmw.NewPBMW(s.disk)
	case "pjass":
		alg = jass.NewP(s.disk)
	default:
		http.Error(w, "algo must be sparta|pbmw|pjass", http.StatusBadRequest)
		return
	}

	opts := topk.Options{K: k}
	switch r.URL.Query().Get("mode") {
	case "", "high":
		opts.Delta = 5 * time.Millisecond
		opts.BoostF = 2
		opts.FracP = 0.3
	case "exact":
		opts.Exact = true
	default:
		http.Error(w, "mode must be exact|high", http.StatusBadRequest)
		return
	}
	if err := opts.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Acquire up to len(q) workers from the shared pool, at least one.
	want := len(q)
	if want > poolSize {
		want = poolSize
	}
	got := 0
	<-s.tokens // block FCFS until at least one worker is free
	got++
	for got < want {
		select {
		case <-s.tokens:
			got++
		default:
			want = got // take what is free, as the paper's driver does
		}
	}
	defer func() {
		for i := 0; i < got; i++ {
			s.tokens <- struct{}{}
		}
	}()
	opts.Threads = got

	res, st, err := alg.Search(q, opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := searchResponse{
		Algo:      alg.Name(),
		K:         k,
		LatencyMS: float64(st.Duration.Microseconds()) / 1000,
		Stop:      st.StopReason,
		Postings:  st.Postings,
	}
	for _, term := range q {
		resp.Query = append(resp.Query, int(term))
	}
	for _, rr := range res {
		resp.Results = append(resp.Results, resultEntry{
			Doc: uint32(rr.Doc), Score: rr.Score.Float(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	io := s.disk.Store().Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"docs":        s.disk.NumDocs(),
		"terms":       s.disk.NumTerms(),
		"postings":    s.disk.Manifest().TotalPostings,
		"blocks_read": io.BlocksRead,
		"cache_hits":  io.CacheHits,
		"rand_reads":  io.RandReads,
		"sim_io_ms":   float64(io.SimulatedIO.Microseconds()) / 1000,
	})
}

// parseQuery accepts comma- or space-separated term ids, optionally
// prefixed "t" ("t12,t733" or "12 733").
func parseQuery(raw string, numTerms int) (model.Query, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("missing q parameter")
	}
	fields := strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == ' ' })
	var q model.Query
	for _, f := range fields {
		f = strings.TrimPrefix(strings.TrimSpace(f), "t")
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad term %q", f)
		}
		if id < 0 || id >= numTerms {
			return nil, fmt.Errorf("term %d out of range (0..%d)", id, numTerms-1)
		}
		q = append(q, model.TermID(id))
	}
	if len(q) > 12 {
		q = q[:12] // the paper's maximum evaluated length
	}
	return q, nil
}
