// Server: a minimal web-search service over the library — the
// deployment surface the paper's latency SLAs are about (§5.3 cites
// the 250 ms interactive budget).
//
// On startup it builds a small synthetic index; then it serves
//
//	GET /search?q=<terms>&k=10&algo=sparta|pbmw|pjass&mode=exact|high
//	GET /stats
//
// with per-query latency, recall-free stats, and storage counters in
// the JSON response. Each algorithm is served through a sparta.Searcher,
// which enforces the latency SLA (a 250 ms query timeout — cancelled
// queries still return their anytime partial top-k), caps concurrent
// queries, and aggregates serving counters for /stats. A disconnecting
// client cancels its query through the request context.
//
//	go run ./examples/server &
//	curl 'localhost:8640/search?q=t12,t733,t5021&algo=sparta&mode=high'
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sparta"
	"sparta/internal/algos/bmw"
	"sparta/internal/algos/jass"
	"sparta/internal/core"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/topk"
)

const (
	listenAddr = "localhost:8640"
	poolSize   = 12
	// queryTimeout is the serving SLA (§5.3 cites the 250 ms
	// interactive budget); queries hitting it return partial results
	// with stop reason "deadline".
	queryTimeout = 250 * time.Millisecond
	// postingCacheBytes bounds the decoded-block cache shared by all
	// queries; Zipfian query traffic keeps hot terms resident.
	postingCacheBytes = 16 << 20
)

type server struct {
	mem       *index.Index
	disk      *diskindex.Index
	cache     *sparta.PostingCache
	searchers map[string]*sparta.Searcher
}

func main() {
	spec := corpus.Spec{
		Name: "web", Docs: 10_000, Vocab: 20_000, ZipfS: 1.0,
		MeanDocLen: 120, MinDocLen: 8, QualitySigma: 1.0, Seed: 42,
	}
	log.Printf("building %d-doc index...", spec.Docs)
	mem := index.FromCorpus(corpus.New(spec))
	disk, err := diskindex.FromIndex(mem, diskindex.DefaultShards, iomodel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cache := sparta.NewPostingCache(postingCacheBytes)
	sparta.AttachPostingCache(disk, cache)
	cfg := sparta.SearcherConfig{Timeout: queryTimeout, MaxConcurrent: poolSize, PostingCache: cache}
	s := &server{
		mem:   mem,
		disk:  disk,
		cache: cache,
		searchers: map[string]*sparta.Searcher{
			"sparta": sparta.NewSearcher(core.New(disk), cfg),
			"pbmw":   sparta.NewSearcher(bmw.NewPBMW(disk), cfg),
			"pjass":  sparta.NewSearcher(jass.NewP(disk), cfg),
		},
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /stats", s.handleStats)
	log.Printf("serving on http://%s  (try /search?q=t12,t733,t5021&algo=sparta&mode=high)", listenAddr)
	log.Fatal(http.ListenAndServe(listenAddr, mux))
}

type searchResponse struct {
	Algo      string        `json:"algo"`
	Query     []int         `json:"query"`
	K         int           `json:"k"`
	LatencyMS float64       `json:"latency_ms"`
	Stop      string        `json:"stop"`
	Postings  int64         `json:"postings"`
	Results   []resultEntry `json:"results"`
}

type resultEntry struct {
	Doc   uint32  `json:"doc"`
	Score float64 `json:"score"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q, err := parseQuery(r.URL.Query().Get("q"), s.disk.NumTerms())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil || k < 1 || k > 1000 {
			http.Error(w, "k must be 1..1000", http.StatusBadRequest)
			return
		}
	}

	algoName := r.URL.Query().Get("algo")
	if algoName == "" {
		algoName = "sparta"
	}
	alg, ok := s.searchers[algoName]
	if !ok {
		http.Error(w, "algo must be sparta|pbmw|pjass", http.StatusBadRequest)
		return
	}

	opts := topk.Options{K: k}
	switch r.URL.Query().Get("mode") {
	case "", "high":
		opts.Delta = 5 * time.Millisecond
		opts.BoostF = 2
		opts.FracP = 0.3
	case "exact":
		opts.Exact = true
	default:
		http.Error(w, "mode must be exact|high", http.StatusBadRequest)
		return
	}
	if err := opts.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Intra-query parallelism equals the term count (the paper's
	// configuration); the Searcher's MaxConcurrent bounds how many
	// queries hold workers at once.
	opts.Threads = len(q)
	if opts.Threads > poolSize {
		opts.Threads = poolSize
	}

	// The request context propagates client disconnects; the Searcher
	// layers its 250 ms SLA timeout on top.
	res, st, err := alg.SearchContext(r.Context(), q, opts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := searchResponse{
		Algo:      alg.Name(),
		K:         k,
		LatencyMS: float64(st.Duration.Microseconds()) / 1000,
		Stop:      st.StopReason,
		Postings:  st.Postings,
	}
	for _, term := range q {
		resp.Query = append(resp.Query, int(term))
	}
	for _, rr := range res {
		resp.Results = append(resp.Results, resultEntry{
			Doc: uint32(rr.Doc), Score: rr.Score.Float(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	io := s.disk.Store().Snapshot()
	serving := make(map[string]any, len(s.searchers))
	for name, sr := range s.searchers {
		c := sr.Counters()
		serving[name] = map[string]any{
			"queries":    c.Queries,
			"errors":     c.Errors,
			"cancelled":  c.Cancelled,
			"deadline":   c.Deadline,
			"rejected":   c.Rejected,
			"in_flight":  c.InFlight,
			"postings":   c.Postings,
			"latency_ms": float64(c.TotalLatency.Microseconds()) / 1000,
		}
	}
	pc := s.cache.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"docs":        s.disk.NumDocs(),
		"terms":       s.disk.NumTerms(),
		"postings":    s.disk.Manifest().TotalPostings,
		"blocks_read": io.BlocksRead,
		"cache_hits":  io.CacheHits,
		"rand_reads":  io.RandReads,
		"view_calls":  io.ViewCalls,
		"sim_io_ms":   float64(io.SimulatedIO.Microseconds()) / 1000,
		"posting_cache": map[string]any{
			"hits":     pc.Hits,
			"misses":   pc.Misses,
			"hit_rate": pc.HitRate(),
			"bytes":    pc.Bytes,
			"entries":  pc.Entries,
		},
		"serving": serving,
	})
}

// parseQuery accepts comma- or space-separated term ids, optionally
// prefixed "t" ("t12,t733" or "12 733").
func parseQuery(raw string, numTerms int) (model.Query, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("missing q parameter")
	}
	fields := strings.FieldsFunc(raw, func(r rune) bool { return r == ',' || r == ' ' })
	var q model.Query
	for _, f := range fields {
		f = strings.TrimPrefix(strings.TrimSpace(f), "t")
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad term %q", f)
		}
		if id < 0 || id >= numTerms {
			return nil, fmt.Errorf("term %d out of range (0..%d)", id, numTerms-1)
		}
		q = append(q, model.TermID(id))
	}
	if len(q) > 12 {
		q = q[:12] // the paper's maximum evaluated length
	}
	return q, nil
}
