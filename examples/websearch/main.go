// Websearch: the paper's case study in miniature (§5).
//
// Generates a ClueWeb-like synthetic corpus, builds the on-disk index
// (read through the simulated SSD + page cache), and serves the same
// long query with Sparta, pBMW, and pJASS in approximate
// configurations — printing latency, recall against the exact answer,
// and the machine-independent work metrics.
//
//	go run ./examples/websearch
package main

import (
	"fmt"
	"log"
	"time"

	"sparta/internal/algos/bmw"
	"sparta/internal/algos/jass"
	"sparta/internal/core"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/queries"
	"sparta/internal/topk"
)

func main() {
	// A small slice of the web: 10K documents with Zipfian vocabulary.
	spec := corpus.Spec{
		Name: "web", Docs: 10_000, Vocab: 20_000, ZipfS: 1.0,
		MeanDocLen: 120, MinDocLen: 8, Seed: 42,
	}
	fmt.Printf("generating %s: %d docs...\n", spec.Name, spec.Docs)
	mem := index.FromCorpus(corpus.New(spec))

	// Disk-resident index behind a simulated SSD and page cache.
	disk, err := diskindex.FromIndex(mem, diskindex.DefaultShards, iomodel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d postings on simulated disk\n\n", disk.Manifest().TotalPostings)

	// A 12-term query — the verbose "voice search" case the paper
	// motivates: state-of-the-art engines struggle at this length.
	sets := queries.Generate(mem, 12, 5, 7)
	q := sets.Length(12)[0]
	exact := topk.BruteForce(mem, q, 100)

	algos := []struct {
		alg  topk.Algorithm
		opts topk.Options
	}{
		{core.New(disk), topk.Options{K: 100, Threads: 12, Delta: 5 * time.Millisecond}},
		{bmw.NewPBMW(disk), topk.Options{K: 100, Threads: 12, BoostF: 1.3}},
		{jass.NewP(disk), topk.Options{K: 100, Threads: 12, FracP: 0.4}},
	}

	fmt.Printf("12-term query, k=100, 12 worker threads, approximate configurations:\n\n")
	fmt.Printf("%-8s %10s %9s %12s %12s\n", "algo", "latency", "recall", "postings", "io-blocks")
	for _, a := range algos {
		disk.Store().Flush() // cold page cache, as in the paper
		disk.Store().ResetStats()
		res, st, err := a.alg.Search(q, a.opts)
		if err != nil {
			log.Fatalf("%s: %v", a.alg.Name(), err)
		}
		io := disk.Store().Snapshot()
		fmt.Printf("%-8s %10v %8.1f%% %12d %12d\n",
			a.alg.Name(), st.Duration.Round(100*time.Microsecond),
			model.Recall(exact, res)*100, st.Postings, io.BlocksRead)
	}

	fmt.Printf("\n(run with different seeds/sizes to explore; see cmd/experiments\n" +
		" for the full evaluation that regenerates every table and figure)\n")
}
