// Quickstart: index a handful of documents and run Sparta.
//
// This is the smallest end-to-end use of the library: build an
// in-memory inverted index from raw text, form a query, and retrieve
// the top-k with the exact (safe) configuration of Sparta.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sparta/internal/core"
	"sparta/internal/index"
	"sparta/internal/model"
	"sparta/internal/text"
	"sparta/internal/topk"
)

func main() {
	docs := []string{
		"the threshold algorithm retrieves top k objects from a database",
		"parallel algorithms exploit multi core hardware for fast retrieval",
		"web search engines rank documents with inverted indexes",
		"sparta is a scalable parallel threshold algorithm for top k retrieval",
		"posting lists are traversed in decreasing order of term score",
		"approximate query evaluation trades recall for latency",
		"multi core parallel web search with low latency and high recall",
		"database systems aggregate features from multiple ranked inputs",
	}

	// Build the index. The builder tokenizes, drops stopwords, computes
	// tf-idf term scores, and materializes both traversal orders.
	b := index.NewBuilder()
	for _, d := range docs {
		b.Add(d)
	}
	idx := b.Build()
	fmt.Printf("indexed %d documents, %d terms, %d postings\n\n",
		idx.NumDocs(), idx.NumTerms(), idx.TotalPostings())

	// Form a query: terms are dictionary ids.
	analyzer := text.NewAnalyzer()
	var q model.Query
	for _, w := range analyzer.Tokenize("parallel top k retrieval") {
		if t, ok := idx.Lookup(w); ok {
			q = append(q, t)
		}
	}

	// Search with Sparta, exact (Δ = ∞) mode, 4 worker threads.
	sparta := core.New(idx)
	res, st, err := sparta.Search(q, topk.Options{K: 3, Threads: 4, Exact: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %v -> top %d of %d candidates in %v (%d postings, stop: %s)\n",
		q, len(res), st.CandidatesPeak, st.Duration, st.Postings, st.StopReason)
	for rank, r := range res {
		fmt.Printf("%d. [score %.3f] %s\n", rank+1, r.Score.Float(), docs[r.Doc])
	}
}
