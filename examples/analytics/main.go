// Analytics: the introduction's real-time analytics scenario.
//
// "A real-time analytics engine might keep daily lists of application
// access statistics — the number of users accessing every application
// on a given day. A query may then retrieve the popular applications
// over a ten-day period by aggregating over ten lists." (§1)
//
// Here the "documents" are applications, the "terms" are days, and a
// term score is the app's access count on that day. The example shows
// that the retrieval framework is index-agnostic: it implements
// postings.View directly over raw daily counters (no tf-idf, no text)
// and runs both Sparta and the Threshold Algorithm's NRA over it.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"sort"

	"sparta/internal/algos/ta"
	"sparta/internal/core"
	"sparta/internal/model"
	"sparta/internal/postings"
	"sparta/internal/topk"
	"sparta/internal/xrand"
)

// dailyStats implements postings.View over per-day app access counts.
type dailyStats struct {
	numApps int
	// byDay[d] is day d's posting list in app-id order; impact[d] is
	// the same list in decreasing access-count order.
	byDay  [][]model.Posting
	impact [][]model.Posting
}

func newDailyStats(apps, days int, seed uint64) *dailyStats {
	rng := xrand.New(seed)
	// App popularity is heavy-tailed; day-to-day counts fluctuate.
	base := make([]float64, apps)
	z := xrand.NewZipf(xrand.New(seed+1), 1.1, apps)
	for i := 0; i < apps; i++ {
		base[i] = z.Prob(i) * 1e7
	}
	s := &dailyStats{numApps: apps}
	for d := 0; d < days; d++ {
		day := make([]model.Posting, 0, apps)
		for a := 0; a < apps; a++ {
			noise := 0.5 + rng.Float64() // ±50% daily fluctuation
			count := model.Score(base[a] * noise)
			if count <= 0 {
				continue
			}
			day = append(day, model.Posting{Doc: model.DocID(a), Score: count})
		}
		imp := make([]model.Posting, len(day))
		copy(imp, day)
		sort.Slice(imp, func(i, j int) bool {
			if imp[i].Score != imp[j].Score {
				return imp[i].Score > imp[j].Score
			}
			return imp[i].Doc < imp[j].Doc
		})
		s.byDay = append(s.byDay, day)
		s.impact = append(s.impact, imp)
	}
	return s
}

func (s *dailyStats) NumDocs() int  { return s.numApps }
func (s *dailyStats) NumTerms() int { return len(s.byDay) }

func (s *dailyStats) DF(t model.TermID) int { return len(s.byDay[t]) }

func (s *dailyStats) MaxScore(t model.TermID) model.Score {
	if len(s.impact[t]) == 0 {
		return 0
	}
	return s.impact[t][0].Score
}

func (s *dailyStats) DocCursor(t model.TermID) postings.DocCursor {
	return postings.NewSliceDocCursor(s.byDay[t], nil, 0)
}

func (s *dailyStats) ScoreCursor(t model.TermID) postings.ScoreCursor {
	return postings.NewSliceScoreCursor(s.impact[t], 0)
}

func (s *dailyStats) ScoreCursorShard(t model.TermID, shard, nShards int) postings.ScoreCursor {
	lo, hi := postings.ShardRange(s.numApps, shard, nShards)
	var sub []model.Posting
	for _, p := range s.impact[t] {
		if p.Doc >= lo && p.Doc < hi {
			sub = append(sub, p)
		}
	}
	return postings.NewSliceScoreCursor(sub, 0)
}

func (s *dailyStats) RandomAccess(t model.TermID, d model.DocID) (model.Score, bool) {
	list := s.byDay[t]
	i := sort.Search(len(list), func(i int) bool { return list[i].Doc >= d })
	if i < len(list) && list[i].Doc == d {
		return list[i].Score, true
	}
	return 0, false
}

func main() {
	const apps, days, topN = 50_000, 10, 5
	stats := newDailyStats(apps, days, 99)

	// The TopN query: aggregate all ten daily lists.
	q := make(model.Query, days)
	for d := range q {
		q[d] = model.TermID(d)
	}

	exact := topk.BruteForce(stats, q, topN)

	fmt.Printf("top %d apps over a %d-day window (%d apps tracked)\n\n", topN, days, apps)
	for _, alg := range []topk.Algorithm{core.New(stats), ta.NewNRA(stats)} {
		res, st, err := alg.Search(q, topk.Options{K: topN, Threads: 4, Exact: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %v, %d of %d daily entries read (early stopping), stop: %s\n",
			alg.Name(), st.Duration, st.Postings, totalEntries(stats), st.StopReason)
		for rank, r := range res {
			fmt.Printf("  %d. app-%05d  %d accesses\n", rank+1, r.Doc, r.Score)
		}
		if model.Recall(exact, res) != 1 {
			log.Fatalf("%s missed exact TopN", alg.Name())
		}
		fmt.Println()
	}
}

func totalEntries(s *dailyStats) int64 {
	var n int64
	for t := 0; t < s.NumTerms(); t++ {
		n += int64(s.DF(model.TermID(t)))
	}
	return n
}
