// Voicesearch: sustained throughput under the production voice-query
// workload (§5.3's Table 4 scenario).
//
// Voice interfaces produce long queries — mean 4.2 terms, more than 5%
// with 10+ terms. This example streams such a mix through a shared
// worker pool with first-come-first-served scheduling and compares the
// throughput of Sparta and pBMW in their high-recall configurations.
//
//	go run ./examples/voicesearch
package main

import (
	"fmt"
	"log"
	"time"

	"sparta/internal/algos/bmw"
	"sparta/internal/core"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/queries"
	"sparta/internal/sched"
	"sparta/internal/topk"
)

func main() {
	spec := corpus.Spec{
		Name: "web", Docs: 8_000, Vocab: 20_000, ZipfS: 1.0,
		MeanDocLen: 100, MinDocLen: 8, Seed: 11,
	}
	fmt.Printf("building %d-doc index...\n", spec.Docs)
	mem := index.FromCorpus(corpus.New(spec))
	disk, err := diskindex.FromIndex(mem, diskindex.DefaultShards, iomodel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 200 queries drawn from the voice length distribution.
	sets := queries.Generate(mem, queries.MaxLen, 20, 3)
	stream := sets.VoiceMix(200, 17)
	histo := make(map[int]int)
	for _, q := range stream {
		histo[len(q)]++
	}
	fmt.Printf("query mix: %d queries, lengths 1..12 (10+ terms: %d)\n\n",
		len(stream), histo[10]+histo[11]+histo[12])

	const pool = 12
	runs := []struct {
		alg  topk.Algorithm
		opts topk.Options
	}{
		{core.New(disk), topk.Options{K: 100, Delta: 5 * time.Millisecond}},
		{bmw.NewPBMW(disk), topk.Options{K: 100, BoostF: 1.3}},
	}
	fmt.Printf("%-8s %10s %12s %12s %8s\n", "algo", "qps", "mean ms", "p95 ms", "errors")
	for _, r := range runs {
		disk.Store().Flush()
		res := sched.Run(r.alg, stream, pool, r.opts)
		fmt.Printf("%-8s %10.1f %12.2f %12.2f %8d\n",
			r.alg.Name(), res.QPS, res.Latency.Mean(), res.Latency.Percentile(95), res.Errors)
	}
	fmt.Printf("\n(shared %d-thread pool, FCFS admission; see cmd/experiments table4\n"+
		" for the full paper reproduction)\n", pool)
}
