module sparta

go 1.24
