package sparta_test

import (
	"testing"

	"sparta"
	"sparta/internal/algos/algotest"
	"sparta/internal/corpus"
	"sparta/internal/index"
	"sparta/internal/model"
	"sparta/internal/topk"
)

// TestLiveIndexDropsIntoSearcher: a live index implements View, so the
// serving stack built for immutable indexes — sparta.New, Searcher —
// runs over it unchanged, and exact results match a fresh build of the
// same documents while ingest continues between queries.
func TestLiveIndexDropsIntoSearcher(t *testing.T) {
	c := corpus.New(corpus.Spec{
		Name: "live", Docs: 600, Vocab: 150, ZipfS: 1.0,
		MeanDocLen: 40, MinDocLen: 5, Seed: 77, QualitySigma: 0,
	})
	bags := make([][]corpus.TermCount, 600)
	for i := range bags {
		bags[i] = c.Doc(model.DocID(i))
	}

	live, err := sparta.OpenLive(t.TempDir(), sparta.LiveConfig{FlushDocs: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	s := sparta.NewSearcher(sparta.New(live), sparta.SearcherConfig{})

	build := func(n int) *index.Index {
		b := index.NewBuilder()
		for i := 0; i < n; i++ {
			b.AddBag(bags[i])
		}
		return b.Build()
	}

	for _, n := range []int{250, 600} {
		start := 0
		if n == 600 {
			start = 250
		}
		for i := start; i < n; i++ {
			if _, err := live.AppendBag(bags[i]); err != nil {
				t.Fatal(err)
			}
		}
		fresh := build(n)
		q := algotest.RandomQuery(fresh, 4, uint64(n))
		want := topk.BruteForce(fresh, q, 10)
		got, st, err := s.Search(q, sparta.Options{K: 10, Threads: 2, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d results, want %d", n, len(got), len(want))
		}
		for r := range want {
			if got[r].Score != want[r].Score {
				t.Fatalf("n=%d rank %d: score %d, want %d (stop %q)", n, r, got[r].Score, want[r].Score, st.StopReason)
			}
		}
		algotest.AssertSettled(t, "searcher over live index", live)
	}
}
