package sparta_test

import (
	"sync"
	"testing"

	"sparta"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/queries"
)

// TestPostingCacheHitRateOnZipfianLog is the tentpole's serving-side
// acceptance check: on a Zipfian query log — the regime hot-term
// caching is for — a 16 MB decoded-block cache must absorb more than
// half of all block lookups.
func TestPostingCacheHitRateOnZipfianLog(t *testing.T) {
	mem := index.FromCorpus(corpus.New(corpus.Spec{
		Name: "zipf", Docs: 8000, Vocab: 2000, ZipfS: 1.0,
		MeanDocLen: 80, MinDocLen: 5, Seed: 7,
	}))
	disk, err := diskindex.FromIndex(mem, diskindex.DefaultShards, iomodel.RAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := sparta.NewPostingCache(16 << 20)
	if !sparta.AttachPostingCache(disk, cache) {
		t.Fatal("disk index did not accept a posting cache")
	}

	s := sparta.NewSearcher(sparta.New(disk), sparta.SearcherConfig{PostingCache: cache})
	log := queries.Generate(disk, 6, 40, 11).Length(4)
	// First pass warms the cache through two-touch admission (a block
	// must be seen twice before it is cached); the hit-rate bar applies
	// to the steady state after it.
	for _, q := range log {
		if _, _, err := s.Search(q, sparta.Options{K: 10, Exact: true, Threads: 4}); err != nil {
			t.Fatal(err)
		}
	}
	cache.ResetStats()
	for _, q := range log {
		if _, _, err := s.Search(q, sparta.Options{K: 10, Exact: true, Threads: 4}); err != nil {
			t.Fatal(err)
		}
	}

	c := s.Counters()
	if c.CacheHits == 0 || c.CacheMisses == 0 {
		t.Fatalf("degenerate counters: %d hits, %d misses", c.CacheHits, c.CacheMisses)
	}
	if rate := c.CacheHitRate(); rate <= 0.5 {
		t.Errorf("hit rate %.3f on a Zipfian log, want > 0.5 (hits %d, misses %d)",
			rate, c.CacheHits, c.CacheMisses)
	}
	if c.CacheBytes > 16<<20 {
		t.Errorf("cache holds %d bytes, budget 16 MB", c.CacheBytes)
	}
}

// TestPostingCacheBudgetUnderConcurrency hammers one deliberately tiny
// cache from many concurrent Searcher queries and requires that the
// membudget limit holds at every observation point — insertion races,
// evictions and all.
func TestPostingCacheBudgetUnderConcurrency(t *testing.T) {
	mem := index.FromCorpus(corpus.New(corpus.Spec{
		Name: "conc", Docs: 4000, Vocab: 600, ZipfS: 1.0,
		MeanDocLen: 50, MinDocLen: 5, Seed: 13,
	}))
	disk, err := diskindex.FromIndex(mem, diskindex.DefaultShards, iomodel.RAMConfig())
	if err != nil {
		t.Fatal(err)
	}
	const limit = 128 << 10 // far smaller than the working set: constant eviction
	cache := sparta.NewPostingCache(limit)
	sparta.AttachPostingCache(disk, cache)
	s := sparta.NewSearcher(sparta.New(disk), sparta.SearcherConfig{
		MaxConcurrent: 8, PostingCache: cache,
	})

	log := queries.Generate(disk, 6, 48, 17).Length(5)
	stop := make(chan struct{})
	var watchdog sync.WaitGroup
	watchdog.Add(1)
	go func() { // budget watchdog sampling concurrently with the queries
		defer watchdog.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if used := cache.Budget().Used(); used > limit {
				t.Errorf("budget used %d exceeds limit %d", used, limit)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(log); i += 8 {
				if _, _, err := s.Search(log[i], sparta.Options{K: 10, Exact: true, Threads: 2}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	watchdog.Wait()

	st := cache.Snapshot()
	if st.Bytes > limit {
		t.Errorf("final cache bytes %d exceed limit %d", st.Bytes, limit)
	}
	if st.Bytes != cache.Budget().Used() {
		t.Errorf("bytes gauge %d != budget used %d", st.Bytes, cache.Budget().Used())
	}
	if st.Evictions == 0 {
		t.Error("tiny budget saw no evictions; test is not stressing the limit")
	}
}
