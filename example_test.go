package sparta_test

import (
	"fmt"

	"sparta"
)

// Example demonstrates the minimal index-and-search flow: the facade's
// builder tokenizes and scores documents, Sparta retrieves the top-k.
func Example() {
	docs := []string{
		"the quick brown fox",
		"quick retrieval of brown documents",
		"slow exhaustive scan of documents",
	}
	b := sparta.NewIndexBuilder()
	for _, d := range docs {
		b.Add(d)
	}
	idx := b.Build()

	var q sparta.Query
	for _, w := range []string{"quick", "documents"} {
		if t, ok := idx.Lookup(w); ok {
			q = append(q, t)
		}
	}
	res, _, err := sparta.New(idx).Search(q, sparta.Options{K: 1, Threads: 2, Exact: true})
	if err != nil {
		panic(err)
	}
	fmt.Println(docs[res[0].Doc])
	// Output: quick retrieval of brown documents
}

// ExampleRecall shows the quality metric used throughout the paper's
// evaluation: the fraction of the exact top-k an approximation found.
func ExampleRecall() {
	exact := sparta.TopK{{Doc: 1, Score: 30}, {Doc: 2, Score: 20}}
	approx := sparta.TopK{{Doc: 1, Score: 30}, {Doc: 9, Score: 5}}
	fmt.Println(sparta.Recall(exact, approx))
	// Output: 0.5
}
