// Benchmarks mirroring the paper's tables and figures at test scale
// (see DESIGN.md §3 for the experiment-to-bench map). These run each
// artifact's inner measurement — one query evaluation per iteration —
// over a small shared environment so `go test -bench=.` finishes in
// minutes; cmd/experiments runs the full-scale versions with the
// paper's layouts.
//
// Benchmarks report, besides ns/op:
//
//	postings/op — posting entries traversed (machine-independent work)
//	recall      — result quality vs the exact top-k
//
// Ablation benchmarks (BenchmarkAblation*) isolate the design choices
// DESIGN.md §4 calls out: deferred UB publication, cleaner shrinking,
// termMap replicas, docMap lock granularity, and segment size.
package sparta_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sparta/internal/algos/ta"
	"sparta/internal/bench"
	"sparta/internal/cindex"
	"sparta/internal/core"
	"sparta/internal/corpus"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/sched"
	"sparta/internal/topk"
)

const (
	benchK       = 50
	benchThreads = 12
)

var (
	envOnce sync.Once
	benchEn *bench.Env
)

// benchEnv lazily builds the shared benchmark environment: an 8K-doc
// ClueWeb-like corpus on simulated disk.
func benchEnv(b *testing.B) *bench.Env { return benchEnvT(b) }

// benchEnvT is the testing.TB-generic form, shared with the root
// integration tests.
func benchEnvT(tb testing.TB) *bench.Env {
	tb.Helper()
	envOnce.Do(func() {
		spec := corpus.Spec{
			Name: "bench", Docs: 8_000, Vocab: 20_000, ZipfS: 1.0,
			MeanDocLen: 100, MinDocLen: 8, Seed: 7,
		}
		cfg := iomodel.DefaultConfig()
		env, err := bench.NewEnv(spec, cfg, bench.EnvOptions{
			K: benchK, QueriesPerLength: 10, Shards: 12, MemBudgetEntries: -1,
		})
		if err != nil {
			panic(err)
		}
		benchEn = env
	})
	return benchEn
}

// runQueryBench measures one variant on m-term queries with the given
// parallelism, reporting work and recall metrics.
func runQueryBench(b *testing.B, v bench.Variant, m, threads int) {
	env := benchEnv(b)
	qs := env.Sets.Length(m)
	env.FlushAndReset()
	var postings int64
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		opts := v.Opts
		opts.Threads = threads
		alg := bench.MakeAlgorithm(v.ID, env.Disk)
		res, st, err := alg.Search(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		postings += st.Postings
		recall += model.Recall(env.Exact(q), res)
	}
	b.StopTimer()
	b.ReportMetric(float64(postings)/float64(b.N), "postings/op")
	b.ReportMetric(recall/float64(b.N), "recall")
}

// variantByLabel finds a configured variant by its report label.
func variantByLabel(b *testing.B, label string) bench.Variant {
	env := benchEnv(b)
	t := bench.DefaultTuning()
	all := append(env.ExactVariants(), append(env.HighVariants(t), env.LowVariants(t)...)...)
	for _, v := range all {
		if v.Label == label {
			return v
		}
	}
	b.Fatalf("no variant %q", label)
	return bench.Variant{}
}

// BenchmarkTable2 — mean latency of 12-term exact queries, 12 threads
// (Table 2's measurement, per algorithm).
func BenchmarkTable2(b *testing.B) {
	for _, label := range []string{
		"Sparta-exact", "pNRA-exact", "sNRA-exact", "pRA-exact", "pBMW-exact", "pJASS-exact",
	} {
		b.Run(label, func(b *testing.B) {
			runQueryBench(b, variantByLabel(b, label), 12, benchThreads)
		})
	}
}

// BenchmarkTable3 — the approximate variants on 12-term queries
// (Table 3 reports their recall; the recall metric is attached).
func BenchmarkTable3(b *testing.B) {
	for _, label := range []string{
		"Sparta-high", "pRA-high", "pNRA-high", "sNRA-high",
		"pBMW-high", "pBMW-low", "pJASS-high", "pJASS-low",
	} {
		b.Run(label, func(b *testing.B) {
			runQueryBench(b, variantByLabel(b, label), 12, benchThreads)
		})
	}
}

// BenchmarkFig3Latency — latency vs query length for the high-recall
// variants (Figures 3a–3c's measurement; threads = m).
func BenchmarkFig3Latency(b *testing.B) {
	for _, m := range []int{2, 6, 12} {
		for _, label := range []string{"Sparta-high", "pRA-high", "pBMW-high", "pJASS-high"} {
			b.Run(fmt.Sprintf("m=%d/%s", m, label), func(b *testing.B) {
				runQueryBench(b, variantByLabel(b, label), m, m)
			})
		}
	}
}

// BenchmarkFig3dLowRecall — Sparta-high vs the low-recall state of the
// art (Figures 3d–3e's measurement).
func BenchmarkFig3dLowRecall(b *testing.B) {
	for _, label := range []string{"Sparta-high", "pBMW-low", "pJASS-low"} {
		b.Run(label, func(b *testing.B) {
			runQueryBench(b, variantByLabel(b, label), 12, benchThreads)
		})
	}
}

// BenchmarkFig3fDynamics — exact 12-term evaluation with the recall
// probe attached (Figures 3f–3g's measurement loop).
func BenchmarkFig3fDynamics(b *testing.B) {
	for _, label := range []string{"Sparta-exact", "pRA-exact", "pBMW-exact", "pJASS-exact"} {
		b.Run(label, func(b *testing.B) {
			env := benchEnv(b)
			v := variantByLabel(b, label)
			qs := env.Sets.Length(12)
			env.FlushAndReset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				probe := topk.NewRecallProbe(env.Exact(q))
				opts := v.Opts
				opts.Threads = benchThreads
				opts.Probe = probe
				if _, _, err := bench.MakeAlgorithm(v.ID, env.Disk).Search(q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3hThreads — 12-term latency at 1, 4, and 12 worker
// threads (Figures 3h–3i's measurement).
func BenchmarkFig3hThreads(b *testing.B) {
	for _, th := range []int{1, 4, 12} {
		for _, label := range []string{"Sparta-high", "pBMW-high", "pJASS-high"} {
			b.Run(fmt.Sprintf("t=%d/%s", th, label), func(b *testing.B) {
				runQueryBench(b, variantByLabel(b, label), 12, th)
			})
		}
	}
}

// BenchmarkFig4Throughput — queries/second on the voice mix over a
// shared pool (Table 4 / Figure 4's measurement). qps is reported as
// a metric; each iteration is one full stream.
func BenchmarkFig4Throughput(b *testing.B) {
	for _, label := range []string{"Sparta-high", "pRA-high", "pBMW-high", "pJASS-high"} {
		b.Run(label, func(b *testing.B) {
			env := benchEnv(b)
			v := variantByLabel(b, label)
			stream := env.Sets.VoiceMix(50, 123)
			env.FlushAndReset()
			var qps float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := sched.Run(bench.MakeAlgorithm(v.ID, env.Disk), stream, benchThreads, v.Opts)
				if res.Errors > 0 {
					b.Fatalf("%d failed queries", res.Errors)
				}
				qps += res.QPS
			}
			b.StopTimer()
			b.ReportMetric(qps/float64(b.N), "qps")
		})
	}
}

// runSpartaConfigBench measures Sparta under an ablation Config.
func runSpartaConfigBench(b *testing.B, cfg core.Config, opts topk.Options) {
	env := benchEnv(b)
	qs := env.Sets.Length(12)
	env.FlushAndReset()
	opts.K = benchK
	opts.Threads = benchThreads
	var postings int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		alg := core.NewWithConfig(env.Disk, cfg)
		_, st, err := alg.Search(q, opts)
		if err != nil {
			b.Fatal(err)
		}
		postings += st.Postings
	}
	b.StopTimer()
	b.ReportMetric(float64(postings)/float64(b.N), "postings/op")
}

// BenchmarkAblationUBDeferred — deferred (paper) vs per-posting UB
// publication (§4.3).
func BenchmarkAblationUBDeferred(b *testing.B) {
	b.Run("deferred", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{}, topk.Options{Delta: 5 * time.Millisecond})
	})
	b.Run("every-posting", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{UBEveryPosting: true}, topk.Options{Delta: 5 * time.Millisecond})
	})
}

// BenchmarkAblationCleaner — background cleaning on vs off (§4.2).
// Exact mode: without cleaning the safe stop degrades to exhaustion.
func BenchmarkAblationCleaner(b *testing.B) {
	b.Run("shrinking", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{}, topk.Options{Exact: true})
	})
	b.Run("no-shrink", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{NoCleanerShrink: true}, topk.Options{Exact: true})
	})
}

// BenchmarkAblationTermMap — per-term local replicas on (Φ=10K) vs off
// (Φ<0) (§4.3).
func BenchmarkAblationTermMap(b *testing.B) {
	b.Run("phi=10000", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{}, topk.Options{Exact: true, Phi: 10_000})
	})
	b.Run("phi=off", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{}, topk.Options{Exact: true, Phi: -1})
	})
}

// BenchmarkAblationLockGranularity — striped vs single-lock docMap
// (§4.3's bucket-granular locking claim).
func BenchmarkAblationLockGranularity(b *testing.B) {
	b.Run("striped", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{}, topk.Options{Exact: true})
	})
	b.Run("global-lock", func(b *testing.B) {
		runSpartaConfigBench(b, core.Config{SingleLockMap: true}, topk.Options{Exact: true})
	})
}

// BenchmarkAblationSegSize — segment-size sensitivity (§4.2: larger
// segments amortize scheduling, smaller ones tighten bounds).
func BenchmarkAblationSegSize(b *testing.B) {
	for _, seg := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("seg=%d", seg), func(b *testing.B) {
			runSpartaConfigBench(b, core.Config{}, topk.Options{Exact: true, SegSize: seg})
		})
	}
}

// --- Extension benchmarks -------------------------------------------------

// BenchmarkCompressionImpact checks, within the reproduction, the claim
// the paper relies on when it abstracts compression away (§5): that
// decompression's end-to-end impact is marginal. The same high-recall
// Sparta queries run over the uncompressed disk index and over the
// varint-delta compressed one (internal/cindex); compare ns/op between
// the two sub-benchmarks, and see the size ratio metric.
func BenchmarkCompressionImpact(b *testing.B) {
	env := benchEnv(b)
	ci, err := cindex.FromIndex(env.Mem, 12, iomodel.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	opts := topk.Options{K: benchK, Threads: benchThreads, Delta: 5 * time.Millisecond}
	qs := env.Sets.Length(12)
	b.Run("uncompressed", func(b *testing.B) {
		env.FlushAndReset()
		alg := core.New(env.Disk)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := alg.Search(qs[i%len(qs)], opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressed", func(b *testing.B) {
		ci.Store().Flush()
		alg := core.New(ci)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := alg.Search(qs[i%len(qs)], opts); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ci.RawBytes())/float64(ci.CompressedBytes()), "size-ratio")
	})
}

// BenchmarkSpartaProb sweeps the probabilistic-pruning extension's ε
// (§6 future work): larger ε prunes more aggressively, trading recall
// for work.
func BenchmarkSpartaProb(b *testing.B) {
	for _, eps := range []float64{0, 0.01, 0.05, 0.2} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			env := benchEnv(b)
			qs := env.Sets.Length(12)
			env.FlushAndReset()
			var postings int64
			var recall float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				alg := core.NewWithConfig(env.Disk, core.Config{ProbEpsilon: eps})
				res, st, err := alg.Search(q, topk.Options{K: benchK, Threads: benchThreads, Exact: true})
				if err != nil {
					b.Fatal(err)
				}
				postings += st.Postings
				recall += model.Recall(env.Exact(q), res)
			}
			b.StopTimer()
			b.ReportMetric(float64(postings)/float64(b.N), "postings/op")
			b.ReportMetric(recall/float64(b.N), "recall")
		})
	}
}

// BenchmarkSelNRA compares round-robin NRA against the selective
// sorted-access policy of Yuan et al. (§6) — the latency question their
// paper left open.
func BenchmarkSelNRA(b *testing.B) {
	for _, id := range []bench.AlgoID{bench.AlgoNRA, "SelNRA"} {
		b.Run(string(id), func(b *testing.B) {
			env := benchEnv(b)
			qs := env.Sets.Length(6)
			env.FlushAndReset()
			var alg topk.Algorithm
			if id == "SelNRA" {
				alg = ta.NewSelNRA(env.Disk)
			} else {
				alg = bench.MakeAlgorithm(id, env.Disk)
			}
			var postings int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := alg.Search(qs[i%len(qs)], topk.Options{K: benchK, Exact: true})
				if err != nil {
					b.Fatal(err)
				}
				postings += st.Postings
			}
			b.StopTimer()
			b.ReportMetric(float64(postings)/float64(b.N), "postings/op")
		})
	}
}

// BenchmarkAdaptiveSched compares fixed intra-query parallelism against
// the predictive scheme of Jeon et al. (§6) on the voice mix.
func BenchmarkAdaptiveSched(b *testing.B) {
	env := benchEnv(b)
	stream := env.Sets.VoiceMix(50, 321)
	opts := topk.Options{K: benchK, Delta: 5 * time.Millisecond}
	b.Run("fixed", func(b *testing.B) {
		env.FlushAndReset()
		var qps float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := sched.Run(core.New(env.Disk), stream, benchThreads, opts)
			qps += res.QPS
		}
		b.StopTimer()
		b.ReportMetric(qps/float64(b.N), "qps")
	})
	b.Run("adaptive", func(b *testing.B) {
		env.FlushAndReset()
		pred := sched.DFPredictor(env.Disk)
		var qps float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := sched.RunAdaptive(core.New(env.Disk), stream, benchThreads, opts, pred, 20_000)
			qps += res.QPS
		}
		b.StopTimer()
		b.ReportMetric(qps/float64(b.N), "qps")
	})
}
