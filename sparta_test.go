package sparta_test

import (
	"path/filepath"
	"testing"
	"time"

	"sparta"
	"sparta/internal/algos/bmw"
	"sparta/internal/algos/jass"
	"sparta/internal/diskindex"
	"sparta/internal/iomodel"
	"sparta/internal/queries"
	"sparta/internal/sched"
	"sparta/internal/text"
	"sparta/internal/topk"
)

// The README quickstart, verbatim in spirit: index text, search, check.
func TestFacadeQuickstart(t *testing.T) {
	docs := []string{
		"parallel threshold algorithm for top k retrieval",
		"web search ranks documents with inverted indexes",
		"approximate evaluation trades recall for latency",
		"top k retrieval with parallel threshold algorithms scales",
	}
	b := sparta.NewIndexBuilder()
	for _, d := range docs {
		b.Add(d)
	}
	idx := b.Build()

	analyzer := text.NewAnalyzer()
	var q sparta.Query
	for _, w := range analyzer.Tokenize("parallel retrieval") {
		if tid, ok := idx.Lookup(w); ok {
			q = append(q, tid)
		}
	}
	if len(q) == 0 {
		t.Fatal("no query terms resolved")
	}

	alg := sparta.New(idx)
	res, st, err := alg.Search(q, sparta.Options{K: 2, Threads: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	exact := sparta.Exact(idx, q, 2)
	if rec := sparta.Recall(exact, res); rec != 1 {
		t.Errorf("recall %v", rec)
	}
	if st.Postings == 0 {
		t.Error("no stats recorded")
	}
}

func TestFacadeApproximate(t *testing.T) {
	env := benchEnvT(t)
	q := env.Sets.Length(8)[0]
	alg := sparta.New(env.Disk)
	res, _, err := alg.Search(q, sparta.Options{K: 20, Threads: 8, Delta: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	exact := sparta.Exact(env.Mem, q, 20)
	if rec := sparta.Recall(exact, res); rec < 0.5 {
		t.Errorf("approximate recall %v", rec)
	}
}

// End-to-end offline pipeline: corpus -> on-disk index directory ->
// reopened index -> query pools -> concurrent query stream over a
// shared pool, with multiple algorithms — the full §5.1 workflow.
func TestIntegrationPipeline(t *testing.T) {
	env := benchEnvT(t)
	dir := filepath.Join(t.TempDir(), "index")
	if err := diskindex.WriteDir(env.Mem, 12, dir); err != nil {
		t.Fatal(err)
	}
	cfg := iomodel.DefaultConfig()
	cfg.NoSleep = true
	idx, err := diskindex.OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sets := queries.Generate(idx, 8, 5, 99)
	stream := sets.VoiceMix(30, 7)
	for i, q := range stream {
		if len(q) > 8 {
			stream[i] = q[:8]
		}
	}
	for _, alg := range []topk.Algorithm{
		sparta.New(idx),
		bmw.NewPBMW(idx),
		jass.NewP(idx),
	} {
		res := sched.Run(alg, stream, 6, topk.Options{K: 10, Exact: true})
		if res.Errors != 0 {
			t.Errorf("%s: %d errors", alg.Name(), res.Errors)
		}
		if res.Queries != 30 {
			t.Errorf("%s: completed %d", alg.Name(), res.Queries)
		}
	}

	// Spot-check result fidelity through the reopened index.
	q := sets.Length(5)[0]
	exact := sparta.Exact(env.Mem, q, 10)
	got, _, err := sparta.New(idx).Search(q, sparta.Options{K: 10, Exact: true, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec := sparta.Recall(exact, got); rec != 1 {
		t.Errorf("recall through reopened index: %v", rec)
	}
}
