// Command indexstat inspects a built index directory: corpus-level
// statistics, posting-list length distribution, score skew, and the
// compression ratio the varint codec would achieve — the numbers one
// looks at when judging whether a corpus can support score-order early
// stopping at all (see DESIGN.md on the document-quality prior).
//
// Usage:
//
//	indexstat -index data/cw/index
//	indexstat -index data/cw/index -term 42     # one term in detail
//	indexstat -index data/cw/shards -verify     # check manifest digests
//	indexstat -stats localhost:7070             # remote shardserver counters
//
// A live (segmented) index directory — one holding a live.json
// manifest — prints per-segment statistics instead: generation,
// document range, block count and byte size of every segment in the
// current epoch.
//
// A compressed index directory — one holding a cmanifest.json — prints
// the posting codec it was written with and its measured compression
// ratio, aggregate and over the longest lists. Directories written by
// an older cindex format version are refused with a rebuild hint.
//
// -verify recomputes every file's SHA-256 digest and the per-shard (or
// per-segment) Merkle root against the manifest and reports every
// mismatch — it works on sharded sets (shards.json) and live
// directories (live.json); single-index directories carry no digests.
//
// -stats dials a running cmd/shardserver and prints its counter
// snapshot (requests, cancels, bad frames, per-shard serving counters,
// settlement violations) as indented JSON.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sparta/internal/cindex"
	"sparta/internal/codec"
	"sparta/internal/diskindex"
	"sparta/internal/iomodel"
	"sparta/internal/liveindex"
	"sparta/internal/model"
	"sparta/internal/postings"
	"sparta/internal/shardrpc"
	"sparta/internal/shardserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexstat: ")
	var (
		indexDir = flag.String("index", "", "index directory (required unless -stats)")
		termID   = flag.Int("term", -1, "inspect a single term id")
		verify   = flag.Bool("verify", false, "verify index files against their manifest digests")
		statsAt  = flag.String("stats", "", "dial a shardserver at this address and print its counters")
	)
	flag.Parse()
	if *statsAt != "" {
		remoteStats(*statsAt)
		return
	}
	if *indexDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *verify {
		runVerify(*indexDir)
		return
	}
	if _, err := os.Stat(filepath.Join(*indexDir, liveindex.ManifestFile)); err == nil {
		liveStats(*indexDir)
		return
	}
	if _, err := os.Stat(filepath.Join(*indexDir, cindex.ManifestFile)); err == nil {
		cindexStats(*indexDir)
		return
	}

	idx, err := diskindex.OpenDir(*indexDir, iomodel.RAMConfig())
	if err != nil {
		log.Fatal(err)
	}

	if *termID >= 0 {
		inspectTerm(idx, model.TermID(*termID))
		return
	}

	m := idx.Manifest()
	fmt.Printf("docs: %d   terms: %d   postings: %d   shards: %d\n",
		m.NumDocs, m.NumTerms, m.TotalPostings, m.Shards)

	// Posting-list length distribution.
	dfs := make([]int, 0, idx.NumTerms())
	var nonEmpty int
	for t := 0; t < idx.NumTerms(); t++ {
		df := idx.DF(model.TermID(t))
		if df > 0 {
			nonEmpty++
		}
		dfs = append(dfs, df)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dfs)))
	fmt.Printf("non-empty terms: %d\n", nonEmpty)
	fmt.Printf("df percentiles: max=%d p90=%d p50=%d p10=%d\n",
		dfs[0], dfs[len(dfs)/10], dfs[len(dfs)/2], dfs[len(dfs)*9/10])

	// Score skew of the longest lists: the ratio between the head and
	// the tail of the impact order decides early-stopping power.
	fmt.Printf("impact skew (head/p50 score) of the 5 longest lists:\n")
	type tl struct {
		t  model.TermID
		df int
	}
	var longest []tl
	for t := 0; t < idx.NumTerms(); t++ {
		longest = append(longest, tl{model.TermID(t), idx.DF(model.TermID(t))})
	}
	sort.Slice(longest, func(i, j int) bool { return longest[i].df > longest[j].df })
	for i := 0; i < 5 && i < len(longest); i++ {
		t := longest[i].t
		c := idx.ScoreCursor(t)
		var head, mid model.Score
		pos, target := 0, longest[i].df/2
		for c.Next() {
			if pos == 0 {
				head = c.Score()
			}
			if pos == target {
				mid = c.Score()
				break
			}
			pos++
		}
		ratio := 0.0
		if mid > 0 {
			ratio = float64(head) / float64(mid)
		}
		fmt.Printf("  term %-7d df=%-8d head=%-10d p50=%-10d skew=%.1fx\n",
			t, longest[i].df, head, mid, ratio)
	}

	// Compression ratio estimate over the longest lists.
	var raw, comp int64
	for i := 0; i < 50 && i < len(longest); i++ {
		t := longest[i].t
		list := readDocList(idx, t)
		raw += int64(len(list)) * 8
		base := model.DocID(0)
		for start := 0; start < len(list); start += postings.BlockSize {
			end := start + postings.BlockSize
			if end > len(list) {
				end = len(list)
			}
			buf, err := codec.EncodeDocBlock(base, list[start:end])
			if err != nil {
				log.Fatal(err)
			}
			comp += int64(len(buf))
			base = list[end-1].Doc
		}
	}
	if comp > 0 {
		fmt.Printf("varint-delta compression over the 50 longest lists: %.2fx\n",
			float64(raw)/float64(comp))
	}
}

// runVerify recomputes manifest digests for a sharded set or a live
// directory and prints a per-file mismatch report. Exit status 1 on
// any disagreement.
func runVerify(dir string) {
	var (
		kind string
		err  error
	)
	switch {
	case statOK(filepath.Join(dir, liveindex.ManifestFile)):
		kind, err = "live index", liveindex.VerifyDir(dir)
	case statOK(filepath.Join(dir, shardserve.ManifestFile)):
		kind = "shard set"
		if m, merr := shardserve.ReadManifest(dir); merr == nil {
			kind = fmt.Sprintf("shard set (%d shards)", len(m.Shards))
		}
		err = shardserve.VerifySet(dir)
	default:
		log.Fatalf("%s: no %s or %s manifest — only sharded sets and live directories carry digests",
			dir, shardserve.ManifestFile, liveindex.ManifestFile)
	}
	if err != nil {
		fmt.Printf("%s: %s FAILED verification:\n", dir, kind)
		for _, line := range strings.Split(err.Error(), "\n") {
			fmt.Printf("  %s\n", line)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: %s verified OK — every file matches its manifest digest\n", dir, kind)
}

func statOK(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// remoteStats fetches and prints a running shardserver's counter
// snapshot over its stats RPC.
func remoteStats(addr string) {
	cl := shardrpc.NewClient(addr, shardrpc.Config{})
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := cl.ServerStats(ctx)
	if err != nil {
		log.Fatalf("%s: %v", addr, err)
	}
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// cindexStats prints the codec and compression breakdown of a
// compressed index directory. A directory written by an older format
// version gets a rebuild hint instead of a parse failure.
func cindexStats(dir string) {
	ci, err := cindex.OpenDir(dir, iomodel.RAMConfig())
	var ve *cindex.VersionError
	if errors.As(err, &ve) {
		log.Fatalf("%s: compressed index uses format version %d, this build reads version %d — rebuild with cmd/indexbuild",
			dir, ve.Got, ve.Want)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compressed index: docs=%d terms=%d codec=%s\n",
		ci.NumDocs(), ci.NumTerms(), ci.Codec())
	ratio := 0.0
	if ci.CompressedBytes() > 0 {
		ratio = float64(ci.RawBytes()) / float64(ci.CompressedBytes())
	}
	fmt.Printf("aggregate: %d raw -> %d compressed bytes (%.2fx)\n",
		ci.RawBytes(), ci.CompressedBytes(), ratio)

	// Per-term ratios over the longest lists, where block structure
	// dominates and the codec choice actually shows.
	type tl struct {
		t  model.TermID
		df int
	}
	longest := make([]tl, 0, ci.NumTerms())
	for t := 0; t < ci.NumTerms(); t++ {
		if df := ci.DF(model.TermID(t)); df > 0 {
			longest = append(longest, tl{model.TermID(t), df})
		}
	}
	sort.Slice(longest, func(i, j int) bool { return longest[i].df > longest[j].df })
	fmt.Printf("per-term compression of the 10 longest lists:\n")
	fmt.Printf("  %-8s %-9s %-11s %-11s %s\n", "term", "df", "raw B", "compressed", "ratio")
	for i := 0; i < 10 && i < len(longest); i++ {
		t, df := longest[i].t, longest[i].df
		raw := int64(df) * codec.RawPostingBytes
		comp := ci.TermCompressedBytes(t)
		r := 0.0
		if comp > 0 {
			r = float64(raw) / float64(comp)
		}
		fmt.Printf("  %-8d %-9d %-11d %-11d %.2fx\n", t, df, raw, comp, r)
	}
}

// liveStats prints the per-segment breakdown of a segmented live
// index directory.
func liveStats(dir string) {
	ramCfg := iomodel.RAMConfig()
	l, err := liveindex.Open(dir, liveindex.Config{IO: &ramCfg, DisableCompaction: true})
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()

	fmt.Printf("live index: docs=%d terms=%d wal=%dB\n", l.NumDocs(), l.NumTerms(), l.WALBytes())
	stats := l.SegmentStats()
	fmt.Printf("segments: %d\n", len(stats))
	fmt.Printf("  %-9s %-5s %-12s %-8s %-8s %s\n", "kind", "gen", "docs", "blocks", "bytes", "range")
	for _, st := range stats {
		fmt.Printf("  %-9s %-5d %-12d %-8d %-8d [%d,%d)\n",
			st.Kind, st.Generation, st.Docs, st.Blocks, st.Bytes, st.Lo, st.Hi)
	}
}

func inspectTerm(idx *diskindex.Index, t model.TermID) {
	if int(t) >= idx.NumTerms() {
		log.Fatalf("term %d out of range (%d terms)", t, idx.NumTerms())
	}
	fmt.Printf("term %d: df=%d max-score=%d\n", t, idx.DF(t), idx.MaxScore(t))
	c := idx.ScoreCursor(t)
	fmt.Printf("impact head:")
	for i := 0; i < 10 && c.Next(); i++ {
		fmt.Printf(" (%d,%d)", c.Doc(), c.Score())
	}
	fmt.Println()
}

func readDocList(idx *diskindex.Index, t model.TermID) []model.Posting {
	c := idx.DocCursor(t)
	out := make([]model.Posting, 0, idx.DF(t))
	for c.Next() {
		out = append(out, model.Posting{Doc: c.Doc(), Score: c.Score()})
	}
	return out
}
