// Command shardserver serves one shard of a shard set over the wire:
// the standalone-process form of a shard replica. It opens a single
// shard of a directory built by cmd/shardbuild (verifying every file
// against the manifest's digests), attaches the configured replica and
// cache machinery, and answers search, resolve, and stats RPCs on a TCP
// listener (internal/shardrpc framing).
//
// A front-end assembles the full index by dialing one or more
// shardserver processes per shard (sparta.DialShards, or
// `examples/server -remote`); the resulting group merges exactly as if
// the shards were in-process.
//
// Usage:
//
//	shardbuild -docs 200000 -shards 4 -out data/shards
//	shardserver -dir data/shards -shard 0 -listen :7070 &
//	shardserver -dir data/shards -shard 1 -listen :7071 &
//	indexstat -stats localhost:7070           # counter snapshot
//
// On SIGINT/SIGTERM the server stops accepting, drains in-flight
// queries (bounded by -drain), and exits 0 only if every request
// settled its simulated I/O.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparta"
	"sparta/internal/bench"
	"sparta/internal/iomodel"
)

// algoIDs are the serving algorithms this binary accepts for -algo.
var algoIDs = []bench.AlgoID{
	bench.AlgoSparta, bench.AlgoPRA, bench.AlgoPNRA, bench.AlgoSNRA,
	bench.AlgoPBMW, bench.AlgoPWAND, bench.AlgoPJASS, bench.AlgoRA,
	bench.AlgoNRA, bench.AlgoSelNRA, bench.AlgoMaxScore, bench.AlgoWAND,
	bench.AlgoBMW, bench.AlgoJASS,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardserver: ")
	var (
		dir      = flag.String("dir", "", "shard set directory (cmd/shardbuild output, required)")
		shard    = flag.Int("shard", 0, "which shard of the set this process serves")
		listen   = flag.String("listen", ":7070", "TCP listen address")
		name     = flag.String("name", "", "server name in stats (default the listen address)")
		algo     = flag.String("algo", string(bench.AlgoSparta), fmt.Sprintf("serving algorithm: %v", algoIDs))
		replicas = flag.Int("replicas", 1, "replica backends for this shard (hedging/failover within the process)")
		cacheMB  = flag.Int("cachemb", 16, "decoded-block cache budget per replica, MiB (0 disables)")
		drain    = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		os.Exit(2)
	}
	id := bench.AlgoID(*algo)
	known := false
	for _, a := range algoIDs {
		known = known || a == id
	}
	if !known {
		log.Fatalf("unknown algorithm %q (want one of %v)", *algo, algoIDs)
	}

	io := iomodel.DefaultConfig()
	cfg := sparta.ShardGroupConfig{
		IO:       &io,
		Replicas: *replicas,
		// The dialing group owns cross-shard exact resolution (it asks
		// back through the resolve RPC); resolving the local part here
		// too would double the random-access cost for the same answer.
		NoExactResolve: true,
	}
	if *cacheMB > 0 {
		cfg.CacheBytes = int64(*cacheMB) << 20
	}
	g, err := sparta.OpenOneShard(*dir, *shard, func(v sparta.View) sparta.Algorithm {
		return bench.MakeAlgorithm(id, v)
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := sparta.ServeShards(*listen, g, sparta.ShardServerConfig{Name: *name})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving shard %d of %s (%s, %d replica(s)) on %s", *shard, *dir, id, *replicas, srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("shutting down: draining in-flight queries (budget %v)...", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	final := srv.Stats()
	if out, err := json.MarshalIndent(final, "", "  "); err == nil {
		log.Printf("final counters:\n%s", out)
	}
	if final.UnsettledViolations != 0 || g.Unsettled() != 0 {
		log.Fatalf("exiting with unsettled I/O: %d violations, %v outstanding",
			final.UnsettledViolations, g.Unsettled())
	}
	log.Printf("drained clean: %d requests served, every store settled", final.Requests)
}
