// Command calibrate sweeps the approximation knobs (Δ, f, p) of every
// algorithm on long queries and prints mean/P95 latency, recall,
// traversed postings, and the candidate-map peak per configuration.
//
// This is how the reproduction's DefaultTuning values were chosen (and
// how to re-derive them after changing corpus parameters): pick, for
// each algorithm, the knob whose recall lands in the paper's "high"
// (≥96%) and "low" (~80–93%) bands, then compare latencies — exactly
// the methodology of the paper's §5.3.
//
// Usage:
//
//	calibrate                 # CW scale (50K docs), k=10
//	calibrate -scale 10       # CWX10
//	calibrate -k 100 -docs 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sparta/internal/bench"
	"sparta/internal/corpus"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/stats"
	"sparta/internal/topk"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")
	var (
		k       = flag.Int("k", 10, "retrieval depth")
		docs    = flag.Int("docs", 50_000, "base corpus documents")
		scale   = flag.Int("scale", 1, "corpus scale factor")
		nq      = flag.Int("queries", 10, "queries per configuration")
		threads = flag.Int("threads", 12, "worker threads")
		mlen    = flag.Int("m", 12, "query length")
	)
	flag.Parse()

	spec := corpus.DefaultSpec()
	spec.Docs = *docs
	if *scale > 1 {
		spec = corpus.ScaledSpec(spec, *scale)
	}
	t0 := time.Now()
	env, err := bench.NewEnv(spec, iomodel.DefaultConfig(),
		bench.EnvOptions{K: *k, QueriesPerLength: maxInt(*nq, 10), MemBudgetEntries: -1})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s built in %v", env.Describe(), time.Since(t0).Round(time.Millisecond))
	qs := env.Sets.Length(*mlen)[:*nq]

	run := func(label string, id bench.AlgoID, opts topk.Options) {
		var lat, rec, post, peak stats.Sample
		env.FlushAndReset()
		for _, q := range qs {
			opts.K = *k
			opts.Threads = *threads
			res, st, err := bench.MakeAlgorithm(id, env.Disk).Search(q, opts)
			if err != nil {
				fmt.Printf("%-18s ERR %v\n", label, err)
				return
			}
			lat.AddDuration(st.Duration)
			rec.Add(model.Recall(env.Exact(q), res))
			post.Add(float64(st.Postings))
			peak.Add(float64(st.CandidatesPeak))
		}
		fmt.Printf("%-18s mean=%8.2fms p95=%8.2fms recall=%5.1f%% postings=%9.0f peak=%8.0f\n",
			label, lat.Mean(), lat.Percentile(95), rec.Mean()*100, post.Mean(), peak.Mean())
	}

	run("Sparta-exact", bench.AlgoSparta, topk.Options{Exact: true})
	run("pRA-exact", bench.AlgoPRA, topk.Options{Exact: true})
	run("pNRA-exact", bench.AlgoPNRA, topk.Options{Exact: true})
	run("sNRA-exact", bench.AlgoSNRA, topk.Options{Exact: true})
	run("pBMW-exact", bench.AlgoPBMW, topk.Options{Exact: true})
	run("pJASS-exact", bench.AlgoPJASS, topk.Options{Exact: true})
	for _, d := range []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		run(fmt.Sprintf("Sparta d=%v", d), bench.AlgoSparta, topk.Options{Delta: d})
	}
	for _, d := range []time.Duration{2 * time.Millisecond, 5 * time.Millisecond} {
		run(fmt.Sprintf("pRA d=%v", d), bench.AlgoPRA, topk.Options{Delta: d})
		run(fmt.Sprintf("pNRA d=%v", d), bench.AlgoPNRA, topk.Options{Delta: d})
		run(fmt.Sprintf("sNRA d=%v", d), bench.AlgoSNRA, topk.Options{Delta: d})
	}
	for _, f := range []float64{1.5, 2, 4, 8, 16} {
		run(fmt.Sprintf("pBMW f=%v", f), bench.AlgoPBMW, topk.Options{BoostF: f})
	}
	for _, p := range []float64{0.01, 0.03, 0.1, 0.3} {
		run(fmt.Sprintf("pJASS p=%v", p), bench.AlgoPJASS, topk.Options{FracP: p})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
