// Command experiments regenerates every table and figure of the
// paper's evaluation (§5.3) at the reproduction scale. Each subcommand
// prints rows/series in the same layout the paper reports;
// EXPERIMENTS.md records the measured outputs next to the paper's.
//
// Usage:
//
//	experiments all                 # everything (builds CW and CWX10)
//	experiments table2 table3       # individual artifacts
//	experiments -queries 20 fig3a   # more queries per point
//	experiments -docs 20000 -scale 5 all   # smaller reproduction
//
// Subcommands: table2 table3 table4 fig3a fig3b fig3c fig3d fig3e
// fig3f fig3g fig3h fig3i fig4 ramtable compression all
//
// The extra "bench" subcommand (not part of "all") runs the default
// grid with and without the decoded-block posting cache and writes the
// machine-readable BENCH_topk.json artifact consumed by CI. The
// "throughput" subcommand (also not part of "all") runs the closed-loop
// multi-client grid, batched vs sequential, and writes
// BENCH_throughput.json. The "ingest" subcommand streams documents
// into a live segmented index while query clients measure latency,
// background compaction off versus on, and writes BENCH_ingest.json.
// The "faults" subcommand serves the exact query log through a
// replicated group under a seeded fault schedule — the error-rate ×
// replica-count availability grid, one dark replica when R>1 — and
// writes BENCH_faults.json. The "netgrid" subcommand serves the exact
// query log through the same shard sets in-process and over loopback
// shardserver processes (the shardrpc transport), measuring throughput,
// tail latency, and the added wire latency, and writes BENCH_net.json.
// The "scale" subcommand builds the corpus at each -scalefactors
// multiple of the base size, compresses it with the group codec, and
// serves exact queries at each scale, writing BENCH_scale.json; each
// scale is built and released before the next so the 100x stretch fits
// in RAM.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sparta/internal/bench"
	"sparta/internal/cindex"
	"sparta/internal/corpus"
	"sparta/internal/iomodel"
	"sparta/internal/stats"
	"sparta/internal/topk"
)

type runner struct {
	base      corpus.Spec
	scale     int
	cfg       iomodel.Config
	envOpts   bench.EnvOptions
	tuning    bench.Tuning
	nQueries  int
	threads   int
	benchOut  string
	shardOut  string
	shardP    int
	shardTO   time.Duration
	cacheMB   int64
	tputOut   string
	tputCs    []int
	batchWin  time.Duration
	maxBatch  int
	warmBlk   int
	fused     bool
	microOut  string
	ingestOut string
	ingestN   int
	faultsOut string
	faultRate []float64
	faultReps []int
	netOut    string
	netPs     []int
	netCs     int
	scaleOut  string
	scaleFs   []int
	out       io.Writer
	cw, cwx   *bench.Env
	ram       *bench.Env
	sweepHigh map[string][]bench.SweepPoint // cached fig3a/3b data per corpus
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		docs      = flag.Int("docs", 0, "base corpus documents (default 50000)")
		scale     = flag.Int("scale", 10, "CWX10 scale factor")
		k         = flag.Int("k", 10, "retrieval depth (k/corpus selectivity matches the paper's 1000/50M)")
		nq        = flag.Int("queries", 10, "queries per measurement point")
		threads   = flag.Int("threads", 12, "max worker threads (paper: 12-core Xeon)")
		shards    = flag.Int("shards", 12, "sNRA shards")
		budget    = flag.Int("budget", 200_000, "candidate memory budget in entries (<0 disables)")
		seed      = flag.Uint64("seed", 2020, "workload seed")
		ram       = flag.Bool("ram", false, "RAM-resident indexes (no simulated I/O)")
		delta     = flag.Duration("delta", 5*time.Millisecond, "TA-family Δ (high recall)")
		fHigh     = flag.Float64("fhigh", 2, "pBMW f (high recall)")
		fLow      = flag.Float64("flow", 6, "pBMW f (low recall)")
		pHigh     = flag.Float64("phigh", 0.30, "pJASS p (high recall)")
		pLow      = flag.Float64("plow", 0.10, "pJASS p (low recall)")
		outDir    = flag.String("outdir", "", "also write each artifact to <outdir>/<name>.txt")
		benchJSON = flag.String("benchout", "BENCH_topk.json",
			"output path of the machine-readable report the bench subcommand writes")
		shardJSON = flag.String("benchshardedout", "BENCH_sharded.json",
			"output path of the sharded-serving report the bench subcommand writes")
		shardP  = flag.Int("shardp", 4, "shard count of the sharded bench section")
		shardTO = flag.Duration("shardtimeout", 2*time.Millisecond,
			"tight per-shard timeout of the sharded bench section")
		cacheMB  = flag.Int64("cachemb", 16, "posting-cache budget (MB) for the bench subcommand")
		tputJSON = flag.String("throughputout", "BENCH_throughput.json",
			"output path of the report the throughput subcommand writes")
		clients  = flag.String("clients", "1,4,16,64", "closed-loop client grid of the throughput subcommand")
		batchWin = flag.Duration("batchwindow", 200*time.Microsecond,
			"query-coalescing window of the throughput subcommand's batched rows")
		maxBatch = flag.Int("maxbatch", 16, "max queries per coalesced batch (throughput subcommand)")
		warmBlk  = flag.Int("warmblocks", 2, "leading blocks warmed per term shared across a batch")
		fused    = flag.Bool("fused", true,
			"add fused-execution rows to the throughput grid (one traversal per shared term scores the whole batch)")
		microJSON = flag.String("microout", "BENCH_fused_micro.json",
			"output path of the fusion micro-benchmark (blocks decoded per query, traversals per term) the throughput subcommand writes")
		ingestJSON = flag.String("ingestout", "BENCH_ingest.json",
			"output path of the report the ingest subcommand writes")
		ingestN    = flag.Int("ingestdocs", 3000, "documents streamed in during the ingest subcommand's measurement window")
		faultsJSON = flag.String("faultsout", "BENCH_faults.json",
			"output path of the report the faults subcommand writes")
		faultRates = flag.String("faultrates", "0,0.05,0.10,0.20",
			"per-attempt transient error rates of the faults subcommand's grid")
		faultReps = flag.String("faultreplicas", "1,2,3",
			"replica counts of the faults subcommand's grid")
		netJSON = flag.String("netout", "BENCH_net.json",
			"output path of the report the netgrid subcommand writes")
		netPs = flag.String("netshards", "2,4",
			"shard counts of the netgrid subcommand (each run in-process and over loopback TCP)")
		netCs     = flag.Int("netclients", 8, "closed-loop clients of the netgrid subcommand")
		scaleJSON = flag.String("scaleout", "BENCH_scale.json",
			"output path of the report the scale subcommand writes")
		scaleFs = flag.String("scalefactors", "1,10,100",
			"corpus scale factors of the scale subcommand (1 = base size)")
	)
	flag.Parse()

	clientGrid, err := parseInts(*clients)
	if err != nil {
		log.Fatalf("-clients: %v", err)
	}
	rateGrid, err := parseRates(*faultRates)
	if err != nil {
		log.Fatalf("-faultrates: %v", err)
	}
	repGrid, err := parseInts(*faultReps)
	if err != nil {
		log.Fatalf("-faultreplicas: %v", err)
	}
	netGrid, err := parseInts(*netPs)
	if err != nil {
		log.Fatalf("-netshards: %v", err)
	}
	scaleGrid, err := parseInts(*scaleFs)
	if err != nil {
		log.Fatalf("-scalefactors: %v", err)
	}

	base := corpus.DefaultSpec()
	if *docs > 0 {
		base.Docs = *docs
	}
	base.Seed = *seed

	cfg := iomodel.DefaultConfig()
	if *ram {
		cfg = iomodel.RAMConfig()
	}

	r := &runner{
		base:  base,
		scale: *scale,
		cfg:   cfg,
		envOpts: bench.EnvOptions{
			K:                *k,
			QueriesPerLength: maxInt(*nq, 10),
			Shards:           *shards,
			Seed:             *seed,
			MemBudgetEntries: *budget,
		},
		tuning: bench.Tuning{
			Delta: *delta,
			FHigh: *fHigh, FLow: *fLow,
			PHigh: *pHigh, PLow: *pLow,
		},
		nQueries:  *nq,
		threads:   *threads,
		benchOut:  *benchJSON,
		shardOut:  *shardJSON,
		shardP:    *shardP,
		shardTO:   *shardTO,
		cacheMB:   *cacheMB,
		tputOut:   *tputJSON,
		tputCs:    clientGrid,
		batchWin:  *batchWin,
		maxBatch:  *maxBatch,
		warmBlk:   *warmBlk,
		fused:     *fused,
		microOut:  *microJSON,
		ingestOut: *ingestJSON,
		ingestN:   *ingestN,
		faultsOut: *faultsJSON,
		faultRate: rateGrid,
		faultReps: repGrid,
		netOut:    *netJSON,
		netPs:     netGrid,
		netCs:     *netCs,
		scaleOut:  *scaleJSON,
		scaleFs:   scaleGrid,
		out:       os.Stdout,
		sweepHigh: make(map[string][]bench.SweepPoint),
	}

	names := flag.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}
	// The paper's artifacts, plus two appendix experiments: the
	// RAM-resident configuration §5 mentions but omits, and the
	// compression comparison behind §5's decompression claim.
	all := []string{"table2", "table3", "table4", "fig3a", "fig3b", "fig3c",
		"fig3d", "fig3e", "fig3f", "fig3g", "fig3h", "fig3i", "fig4",
		"ramtable", "compression"}
	var todo []string
	for _, n := range names {
		if n == "all" {
			todo = append(todo, all...)
		} else {
			todo = append(todo, n)
		}
	}

	for _, name := range todo {
		text, err := r.run(name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(r.out, text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(text+"\n"), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// parseRates parses a comma-separated list of probabilities in [0,1).
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("error rates must be in [0,1), got %g", p)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("client counts must be positive, got %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// envCW lazily builds the base-scale environment.
func (r *runner) envCW() (*bench.Env, error) {
	if r.cw == nil {
		log.Printf("building %s environment...", r.base.Name)
		start := time.Now()
		env, err := bench.NewEnv(r.base, r.cfg, r.envOpts)
		if err != nil {
			return nil, err
		}
		r.cw = env
		log.Printf("%s ready in %v (%s)", r.base.Name,
			time.Since(start).Round(time.Millisecond), env.Describe())
	}
	return r.cw, nil
}

// envRAM lazily builds the RAM-resident base-scale environment.
func (r *runner) envRAM() (*bench.Env, error) {
	if r.ram == nil {
		log.Printf("building %s RAM-resident environment...", r.base.Name)
		env, err := bench.NewEnv(r.base, iomodel.RAMConfig(), r.envOpts)
		if err != nil {
			return nil, err
		}
		r.ram = env
	}
	return r.ram, nil
}

// envCWX lazily builds the scaled environment.
func (r *runner) envCWX() (*bench.Env, error) {
	if r.cwx == nil {
		spec := corpus.ScaledSpec(r.base, r.scale)
		log.Printf("building %s environment (this is the big one)...", spec.Name)
		start := time.Now()
		env, err := bench.NewEnv(spec, r.cfg, r.envOpts)
		if err != nil {
			return nil, err
		}
		r.cwx = env
		log.Printf("%s ready in %v (%s)", spec.Name,
			time.Since(start).Round(time.Millisecond), env.Describe())
	}
	return r.cwx, nil
}

// highSweep runs (or returns the cached) latency-vs-length sweep of the
// high-recall variants; fig3a and fig3b share it.
func (r *runner) highSweep(env *bench.Env) []bench.SweepPoint {
	if pts, ok := r.sweepHigh[env.Spec.Name]; ok {
		return pts
	}
	lengths := []int{1, 2, 4, 6, 8, 10, 12}
	pts := env.RunLatencySweep(env.HighVariants(r.tuning), lengths, r.nQueries)
	r.sweepHigh[env.Spec.Name] = pts
	return pts
}

func (r *runner) run(name string) (string, error) {
	meanOf := func(c bench.LatencyCell) float64 { return c.Mean }
	p95Of := func(c bench.LatencyCell) float64 { return c.P95 }
	postOf := func(c bench.LatencyCell) float64 { return c.Postings }
	lengths := []int{1, 2, 4, 6, 8, 10, 12}

	switch name {
	case "table2":
		cw, err := r.envCW()
		if err != nil {
			return "", err
		}
		cwx, err := r.envCWX()
		if err != nil {
			return "", err
		}
		pCW := cw.RunTable2(r.nQueries, r.threads)
		pX := cwx.RunTable2(r.nQueries, r.threads)
		s := bench.FormatTable("Table 2 ("+cw.Spec.Name+"): mean latency (ms), 12-term exact queries, 12 threads",
			"mean ms", pCW, meanOf)
		s += "\n" + bench.FormatTable("Table 2 ("+cwx.Spec.Name+")",
			"mean ms", pX, meanOf)
		// Machine-independent work metric alongside wall-clock.
		s += "\n" + bench.FormatTable("Table 2 work ("+cw.Spec.Name+"): mean postings traversed",
			"postings", pCW, postOf)
		s += "\n" + bench.FormatTable("Table 2 work ("+cwx.Spec.Name+")",
			"postings", pX, postOf)
		return s, nil

	case "table3":
		cw, err := r.envCW()
		if err != nil {
			return "", err
		}
		cwx, err := r.envCWX()
		if err != nil {
			return "", err
		}
		s := bench.FormatRecallTable("Table 3 ("+cw.Spec.Name+"): recall of approximate variants, 12-term queries",
			cw.RunTable3(r.tuning, r.nQueries, r.threads))
		s += "\n" + bench.FormatRecallTable("Table 3 ("+cwx.Spec.Name+")",
			cwx.RunTable3(r.tuning, r.nQueries, r.threads))
		return s, nil

	case "table4":
		cw, err := r.envCW()
		if err != nil {
			return "", err
		}
		cwx, err := r.envCWX()
		if err != nil {
			return "", err
		}
		vs := func(e *bench.Env) []bench.Variant {
			hv := e.HighVariants(r.tuning)
			// Table 4 columns: Sparta, pRA, pBMW, pJASS (high recall).
			var out []bench.Variant
			for _, v := range hv {
				switch v.ID {
				case bench.AlgoSparta, bench.AlgoPRA, bench.AlgoPBMW, bench.AlgoPJASS:
					out = append(out, v)
				}
			}
			return out
		}
		n := r.nQueries * 10
		s := bench.FormatThroughput("Table 4 ("+cw.Spec.Name+"): throughput (qps), voice-query mix, shared 12-thread pool",
			cw.RunThroughput(vs(cw), r.threads, n))
		s += "\n" + bench.FormatThroughput("Table 4 ("+cwx.Spec.Name+")",
			cwx.RunThroughput(vs(cwx), r.threads, n))
		return s, nil

	case "fig3a", "fig3b":
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		pts := r.highSweep(env)
		if name == "fig3a" {
			s := bench.FormatSweep("Figure 3a (CW): mean latency (ms) vs query length, high-recall variants",
				"m", pts, meanOf)
			s += "\n" + bench.FormatSweep("Figure 3a work (CW): mean postings traversed",
				"m", pts, postOf)
			return s, nil
		}
		return bench.FormatSweep("Figure 3b (CW): 95th-percentile latency (ms) vs query length",
			"m", pts, p95Of), nil

	case "fig3c":
		env, err := r.envCWX()
		if err != nil {
			return "", err
		}
		pts := r.highSweep(env)
		s := bench.FormatSweep("Figure 3c ("+env.Spec.Name+"): mean latency (ms) vs query length, high-recall variants",
			"m", pts, meanOf)
		s += "\n" + bench.FormatSweep("Figure 3c work ("+env.Spec.Name+"): mean postings traversed",
			"m", pts, postOf)
		return s, nil

	case "fig3d", "fig3e":
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		var vs []bench.Variant
		for _, v := range env.HighVariants(r.tuning) {
			if v.ID == bench.AlgoSparta || v.ID == bench.AlgoPBMW || v.ID == bench.AlgoPJASS {
				vs = append(vs, v)
			}
		}
		vs = append(vs, env.LowVariants(r.tuning)...)
		pts := env.RunLatencySweep(vs, lengths, r.nQueries)
		if name == "fig3d" {
			return bench.FormatSweep("Figure 3d (CW): mean latency (ms): Sparta-high vs low-recall state of the art",
				"m", pts, meanOf), nil
		}
		return bench.FormatSweep("Figure 3e (CW): 95th-percentile latency (ms): Sparta-high vs low-recall state of the art",
			"m", pts, p95Of), nil

	case "fig3f", "fig3g":
		var env *bench.Env
		var err error
		if name == "fig3f" {
			env, err = r.envCW()
		} else {
			env, err = r.envCWX()
		}
		if err != nil {
			return "", err
		}
		// Exact versions of Sparta, pRA, pJASS (identical to the
		// approximate until they stop), plus all three pBMW instances.
		t := r.tuning
		vs := []bench.Variant{
			env.Variant(bench.AlgoSparta, "exact", t),
			env.Variant(bench.AlgoPRA, "exact", t),
			env.Variant(bench.AlgoPJASS, "exact", t),
			env.Variant(bench.AlgoPBMW, "exact", t),
		}
		for _, v := range env.HighVariants(t) {
			if v.ID == bench.AlgoPBMW {
				vs = append(vs, v)
			}
		}
		for _, v := range env.LowVariants(t) {
			if v.ID == bench.AlgoPBMW {
				vs = append(vs, v)
			}
		}
		// Horizons sized to the measured exact-variant latency ranges
		// (the paper plots up to one minute on its hardware).
		step := 4 * time.Millisecond
		horizon := 200 * time.Millisecond
		if name == "fig3g" {
			horizon = 2 * time.Second
			step = 40 * time.Millisecond
		}
		ds := env.RunRecallDynamics(vs, r.nQueries, r.threads, step, horizon)
		s := bench.FormatDynamics("Figure 3"+name[4:]+" ("+env.Spec.Name+"): recall vs elapsed time, 12-term queries, 12 workers",
			ds, step, horizon)
		s += "\n" + bench.PlotDynamics("(shape: recall sparklines)", ds, step, horizon)
		return s, nil

	case "fig3h", "fig3i":
		var env *bench.Env
		var err error
		if name == "fig3h" {
			env, err = r.envCW()
		} else {
			env, err = r.envCWX()
		}
		if err != nil {
			return "", err
		}
		threadCounts := []int{1, 2, 4, 6, 8, 10, 12}
		pts := env.RunParallelismSweep(env.HighVariants(r.tuning), threadCounts, r.nQueries)
		s := bench.FormatSweep("Figure 3"+name[4:]+" ("+env.Spec.Name+"): mean latency (ms) vs worker threads, 12-term queries",
			"threads", pts, meanOf)
		s += "\n" + bench.PlotSweep("(shape: log-scaled latency)", pts, meanOf)
		return s, nil

	case "fig4":
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		var vs []bench.Variant
		for _, v := range env.HighVariants(r.tuning) {
			switch v.ID {
			case bench.AlgoSparta, bench.AlgoPRA, bench.AlgoPBMW, bench.AlgoPJASS:
				vs = append(vs, v)
			}
		}
		pts := env.RunThroughputByLength(vs, lengths, r.threads, r.nQueries*5)
		return bench.FormatSweep("Figure 4 (CW): throughput (qps) vs query length, shared 12-thread pool",
			"m", pts, func(c bench.LatencyCell) float64 { return c.Mean }), nil

	case "ramtable":
		// Appendix: the RAM-resident configuration. §5: "We also
		// experimented with RAM-resident indexes, and in all cases, all
		// algorithms except pRA got similar results" — with no I/O to
		// amortize, pRA loses its random-access penalty entirely.
		env, err := r.envRAM()
		if err != nil {
			return "", err
		}
		p := env.RunTable2(r.nQueries, r.threads)
		return bench.FormatTable("Appendix (CW, RAM-resident): mean latency (ms), 12-term exact queries",
			"mean ms", p, meanOf), nil

	case "bench":
		// The machine-readable benchmark artifact: the default grid with
		// and without the decoded-block posting cache, as ns/op plus the
		// reader-accounting and cache metrics the read path is judged on.
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		rep := env.RunBenchReport(r.tuning, r.nQueries, r.threads, r.cacheMB<<20)
		if err := rep.WriteJSON(r.benchOut); err != nil {
			return "", err
		}
		srep, err := env.RunShardedBenchReport(r.tuning, r.nQueries, r.threads,
			r.shardP, r.cacheMB<<20, r.shardTO)
		if err != nil {
			return "", err
		}
		if err := srep.WriteJSON(r.shardOut); err != nil {
			return "", err
		}
		return rep.Summary() + "\nwrote " + r.benchOut + "\n\n" +
			srep.Summary() + "\nwrote " + r.shardOut, nil

	case "throughput":
		// The multi-query serving artifact: closed-loop clients over the
		// Zipfian voice mix, sequential vs batched (coalescing window +
		// shared warm-up + single-flight block fills) vs fused (one
		// traversal per shared term scores the whole batch), plus the
		// fusion micro-benchmark (blocks decoded per query, traversals
		// per term).
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		rep := env.RunThroughputReport(r.tuning, bench.ThroughputConfig{
			Clients:          r.tputCs,
			QueriesPerClient: maxInt(r.nQueries*2, 20),
			Threads:          r.threads,
			CacheBytes:       r.cacheMB << 20,
			Window:           r.batchWin,
			MaxBatch:         r.maxBatch,
			WarmBlocks:       r.warmBlk,
			Fused:            r.fused,
		})
		if err := rep.WriteJSON(r.tputOut); err != nil {
			return "", err
		}
		wrote := "\nwrote " + r.tputOut
		if r.fused {
			if err := rep.Micro().WriteJSON(r.microOut); err != nil {
				return "", err
			}
			wrote += "\nwrote " + r.microOut
		}
		return rep.Summary() + wrote, nil

	case "ingest":
		// The ingest-under-load artifact: query latency percentiles
		// against a live segmented index during sustained ingest,
		// background compaction off vs on.
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		rep, err := env.RunIngestReport(bench.IngestConfig{
			Docs:       r.ingestN,
			MinQueries: maxInt(r.nQueries*20, 200),
			Threads:    maxInt(r.threads/4, 1),
		})
		if err != nil {
			return "", err
		}
		if err := rep.WriteJSON(r.ingestOut); err != nil {
			return "", err
		}
		return rep.Summary() + "\nwrote " + r.ingestOut, nil

	case "faults":
		// The chaos-serving artifact: availability and exactness of the
		// replicated scatter/gather layer across the error-rate ×
		// replica-count grid, a seeded fault schedule on every replica
		// and a permanently dark one on shard 0 when there is a spare.
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		rep, err := env.RunFaultsBenchReport(maxInt(r.nQueries*5, 50), r.threads,
			r.shardP, r.faultRate, r.faultReps, r.envOpts.Seed)
		if err != nil {
			return "", err
		}
		if err := rep.WriteJSON(r.faultsOut); err != nil {
			return "", err
		}
		return rep.Summary() + "\nwrote " + r.faultsOut, nil

	case "netgrid":
		// The remote-serving artifact: the same exact query log through
		// the same shard sets, in-process vs over loopback shardserver
		// processes, measuring what the wire adds.
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		rep, err := env.RunNetBenchReport(maxInt(r.nQueries*10, 100),
			maxInt(r.threads/4, 2), r.netCs, r.netPs, r.envOpts.Seed)
		if err != nil {
			return "", err
		}
		if err := rep.WriteJSON(r.netOut); err != nil {
			return "", err
		}
		return rep.Summary() + "\nwrote " + r.netOut, nil

	case "scale":
		// The scale-envelope artifact: compression ratio and serving
		// metrics as the corpus grows past the base scale. Each factor
		// builds, measures, and frees its indexes before the next one so
		// the peak resident set is a single corpus.
		rep, err := bench.RunScaleReport(r.base, r.scaleFs, r.cfg, r.envOpts,
			maxInt(r.nQueries, 5), r.threads,
			[]bench.AlgoID{bench.AlgoSparta, bench.AlgoPBMW, bench.AlgoPJASS},
			func(msg string) { log.Print(msg) })
		if err != nil {
			return "", err
		}
		if err := rep.WriteJSON(r.scaleOut); err != nil {
			return "", err
		}
		return rep.Summary() + "\nwrote " + r.scaleOut, nil

	case "compression":
		// Appendix: §5's justification for benchmarking uncompressed —
		// "the impact of decompression on end-to-end performance is
		// marginal". Same queries over both index forms.
		env, err := r.envCW()
		if err != nil {
			return "", err
		}
		ci, err := cindex.FromIndex(env.Mem, r.envOpts.Shards, r.cfg)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "Appendix (CW): compressed vs uncompressed index, 12-term queries, 12 threads\n")
		fmt.Fprintf(&b, "index size: %d bytes compressed vs %d raw (%.2fx)\n",
			ci.CompressedBytes(), ci.RawBytes(),
			float64(ci.RawBytes())/float64(ci.CompressedBytes()))
		qs := env.Sets.Length(12)[:r.nQueries]
		for _, id := range []bench.AlgoID{bench.AlgoSparta, bench.AlgoPBMW, bench.AlgoPJASS} {
			var uncomp, comp stats.Sample
			env.FlushAndReset()
			for _, q := range qs {
				_, st, err := bench.MakeAlgorithm(id, env.Disk).Search(q,
					topk.Options{K: r.envOpts.K, Threads: r.threads, Exact: true})
				if err != nil {
					return "", err
				}
				uncomp.AddDuration(st.Duration)
			}
			ci.Store().Flush()
			for _, q := range qs {
				_, st, err := bench.MakeAlgorithm(id, ci).Search(q,
					topk.Options{K: r.envOpts.K, Threads: r.threads, Exact: true})
				if err != nil {
					return "", err
				}
				comp.AddDuration(st.Duration)
			}
			fmt.Fprintf(&b, "%-8s uncompressed %8.2fms   compressed %8.2fms   (%.0f%% delta)\n",
				id, uncomp.Mean(), comp.Mean(), (comp.Mean()/uncomp.Mean()-1)*100)
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("unknown experiment %q", name)
}
