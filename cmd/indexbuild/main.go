// Command indexbuild pre-builds the on-disk index of a corpus
// directory created by corpusgen — the paper's offline index build
// (§5.1): uncompressed binary posting files in both document order and
// score order, block-max metadata, the RA secondary ordering, and the
// sNRA shard partition.
//
// Usage:
//
//	indexbuild -corpus data/cw -out data/cw/index
//
// With -live, the corpus is instead ingested through the segmented
// live-index path (WAL, memtable flushes at -live-flush documents,
// compaction) into a live directory that sparta.OpenLive and indexstat
// understand — the offline way to produce a segmented index for
// ingest-under-load experiments. Live ingest indexes with a neutral
// document-quality prior.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"sparta/internal/cindex"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
	"sparta/internal/iomodel"
	"sparta/internal/liveindex"
	"sparta/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexbuild: ")

	var (
		corpusDir = flag.String("corpus", "", "corpus directory containing corpus.json (required)")
		out       = flag.String("out", "", "index output directory (default <corpus>/index)")
		shards    = flag.Int("shards", diskindex.DefaultShards, "sNRA document-id shards")
		comp      = flag.Bool("compressed", false, "also write the varint-delta compressed form to <out>-compressed")
		live      = flag.Bool("live", false, "ingest through the segmented live-index path instead of a one-shot build")
		liveFlush = flag.Int("live-flush", 4096, "live-index memtable flush threshold (documents)")
	)
	flag.Parse()
	if *corpusDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" {
		*out = filepath.Join(*corpusDir, "index")
	}

	raw, err := os.ReadFile(filepath.Join(*corpusDir, "corpus.json"))
	if err != nil {
		log.Fatal(err)
	}
	var spec corpus.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		log.Fatalf("parsing corpus.json: %v", err)
	}

	if *live {
		buildLive(spec, *out, *liveFlush)
		return
	}

	log.Printf("indexing %s (%d docs)...", spec.Name, spec.Docs)
	start := time.Now()
	x := index.FromCorpus(corpus.New(spec))
	log.Printf("built in-memory index: %d terms, %d postings (%v)",
		x.NumTerms(), x.TotalPostings(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if err := diskindex.WriteDir(x, *shards, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d shards) in %v", *out, *shards, time.Since(start).Round(time.Millisecond))

	if *comp {
		cdir := *out + "-compressed"
		start = time.Now()
		if err := cindex.WriteDir(x, *shards, cdir); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s in %v", cdir, time.Since(start).Round(time.Millisecond))
	}
}

// buildLive streams the corpus through the live-ingest path, leaving a
// segmented directory (manifest, frozen segments, empty WAL).
func buildLive(spec corpus.Spec, out string, flushDocs int) {
	c := corpus.New(spec)
	ramCfg := iomodel.RAMConfig()
	l, err := liveindex.Open(out, liveindex.Config{IO: &ramCfg, FlushDocs: flushDocs})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("live-ingesting %s (%d docs, flush every %d)...", spec.Name, spec.Docs, flushDocs)
	start := time.Now()
	for i := 0; i < spec.Docs; i++ {
		if _, err := l.AppendBag(c.Doc(model.DocID(i))); err != nil {
			log.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		log.Fatal(err)
	}
	for {
		merged, err := l.Compact()
		if err != nil {
			log.Fatal(err)
		}
		if !merged {
			break
		}
	}
	segs := len(l.SegmentStats())
	if err := l.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote live index %s: %d docs, %d segments (%v)",
		out, spec.Docs, segs, time.Since(start).Round(time.Millisecond))
}
