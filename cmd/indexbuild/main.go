// Command indexbuild pre-builds the on-disk index of a corpus
// directory created by corpusgen — the paper's offline index build
// (§5.1): uncompressed binary posting files in both document order and
// score order, block-max metadata, the RA secondary ordering, and the
// sNRA shard partition.
//
// Usage:
//
//	indexbuild -corpus data/cw -out data/cw/index
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"sparta/internal/cindex"
	"sparta/internal/corpus"
	"sparta/internal/diskindex"
	"sparta/internal/index"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("indexbuild: ")

	var (
		corpusDir = flag.String("corpus", "", "corpus directory containing corpus.json (required)")
		out       = flag.String("out", "", "index output directory (default <corpus>/index)")
		shards    = flag.Int("shards", diskindex.DefaultShards, "sNRA document-id shards")
		comp      = flag.Bool("compressed", false, "also write the varint-delta compressed form to <out>-compressed")
	)
	flag.Parse()
	if *corpusDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *out == "" {
		*out = filepath.Join(*corpusDir, "index")
	}

	raw, err := os.ReadFile(filepath.Join(*corpusDir, "corpus.json"))
	if err != nil {
		log.Fatal(err)
	}
	var spec corpus.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		log.Fatalf("parsing corpus.json: %v", err)
	}

	log.Printf("indexing %s (%d docs)...", spec.Name, spec.Docs)
	start := time.Now()
	x := index.FromCorpus(corpus.New(spec))
	log.Printf("built in-memory index: %d terms, %d postings (%v)",
		x.NumTerms(), x.TotalPostings(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if err := diskindex.WriteDir(x, *shards, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d shards) in %v", *out, *shards, time.Since(start).Round(time.Millisecond))

	if *comp {
		cdir := *out + "-compressed"
		start = time.Now()
		if err := cindex.WriteDir(x, *shards, cdir); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s in %v", cdir, time.Since(start).Round(time.Millisecond))
	}
}
