// Command corpusgen materializes a synthetic corpus specification and
// its query log to a directory, the offline first step of the paper's
// §5.1 pipeline (corpus → index → experiments).
//
// Corpora are deterministic functions of their spec, so the corpus
// itself is stored as a small JSON spec (regenerated on demand by
// indexbuild); the query pools are written as a TSV for inspection.
//
// Usage:
//
//	corpusgen -out data/cw                      # paper's base scale
//	corpusgen -out data/cwx10 -scale 10         # the 10x scale-up
//	corpusgen -out data/small -docs 5000        # custom
package main

import (
	"encoding/json"
	"flag"

	"log"
	"os"
	"path/filepath"

	"sparta/internal/corpus"
	"sparta/internal/index"
	"sparta/internal/queries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corpusgen: ")

	var (
		out     = flag.String("out", "", "output directory (required)")
		docs    = flag.Int("docs", 0, "document count (default: paper base scale)")
		vocab   = flag.Int("vocab", 0, "vocabulary size")
		scale   = flag.Int("scale", 1, "scale-up factor applied to the base spec (ClueWebX10 construction)")
		meanLen = flag.Int("meanlen", 0, "mean document length in tokens")
		quality = flag.Float64("quality", -1, "doc-quality prior sigma (default: spec default; 0 disables)")
		seed    = flag.Uint64("seed", 0, "generation seed")
		nq      = flag.Int("queries", queries.PerLength, "queries per length 1..12")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	spec := corpus.DefaultSpec()
	if *docs > 0 {
		spec.Docs = *docs
	}
	if *vocab > 0 {
		spec.Vocab = *vocab
	}
	if *meanLen > 0 {
		spec.MeanDocLen = *meanLen
	}
	if *quality >= 0 {
		spec.QualitySigma = *quality
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	if *scale > 1 {
		spec = corpus.ScaledSpec(spec, *scale)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	specBytes, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "corpus.json"), specBytes, 0o644); err != nil {
		log.Fatal(err)
	}

	// Query pools need the index's dictionary statistics; build the
	// in-memory index once to sample them.
	log.Printf("generating %s (%d docs, %d terms)...", spec.Name, spec.Docs, spec.Vocab)
	x := index.FromCorpus(corpus.New(spec))
	sets := queries.Generate(x, queries.MaxLen, *nq, spec.Seed+1)

	qf, err := os.Create(filepath.Join(*out, "queries.tsv"))
	if err != nil {
		log.Fatal(err)
	}
	defer qf.Close()
	if err := sets.WriteTSV(qf); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: corpus.json + queries.tsv (%d postings in index)",
		*out, x.TotalPostings())
}
