// Command queryrun evaluates a single query against a pre-built index
// directory with any of the repository's algorithms and prints the
// results plus run statistics — a debugging/inspection tool.
//
// Usage:
//
//	queryrun -index data/cw/index -algo Sparta -terms 12,733,5021 -k 10
//	queryrun -index data/cw/index -algo pBMW -mode low -terms 1,2,3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"sparta"
	"sparta/internal/bench"
	"sparta/internal/diskindex"
	"sparta/internal/iomodel"
	"sparta/internal/model"
	"sparta/internal/queries"
	"sparta/internal/topk"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("queryrun: ")

	var (
		indexDir = flag.String("index", "", "index directory (required)")
		algo     = flag.String("algo", "Sparta", "algorithm: Sparta pRA pNRA sNRA pBMW pWAND pJASS RA NRA SelNRA MaxScore WAND BMW JASS")
		terms    = flag.String("terms", "", "comma-separated term ids")
		qfile    = flag.String("queryfile", "", "queries.tsv from corpusgen (alternative to -terms)")
		qlen     = flag.Int("qlen", 12, "query length to pick from -queryfile")
		qidx     = flag.Int("qidx", 0, "query index within the length pool")
		k        = flag.Int("k", 10, "retrieval depth")
		threads  = flag.Int("threads", 0, "worker threads (default: term count)")
		mode     = flag.String("mode", "exact", "exact | high | low")
		delta    = flag.Duration("delta", 5*time.Millisecond, "TA-family Δ for approximate modes")
		ram      = flag.Bool("ram", false, "RAM-resident index (no simulated I/O)")
		timeout  = flag.Duration("timeout", 0, "query timeout (0 = none); on expiry the partial top-k is printed with stop reason \"deadline\"")
	)
	flag.Parse()
	if *indexDir == "" || (*terms == "" && *qfile == "") {
		flag.Usage()
		os.Exit(2)
	}

	var q model.Query
	if *terms != "" {
		for _, part := range strings.Split(*terms, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad term id %q: %v", part, err)
			}
			q = append(q, model.TermID(id))
		}
	} else {
		f, err := os.Open(*qfile)
		if err != nil {
			log.Fatal(err)
		}
		sets, err := queries.ReadTSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if *qlen < 1 || *qlen > sets.MaxLen() {
			log.Fatalf("qlen %d out of range 1..%d", *qlen, sets.MaxLen())
		}
		pool := sets.Length(*qlen)
		if *qidx < 0 || *qidx >= len(pool) {
			log.Fatalf("qidx %d out of range 0..%d", *qidx, len(pool)-1)
		}
		q = pool[*qidx]
	}
	if *threads == 0 {
		*threads = len(q)
	}

	cfg := iomodel.DefaultConfig()
	if *ram {
		cfg = iomodel.RAMConfig()
	}
	idx, err := diskindex.OpenDir(*indexDir, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range q {
		if int(t) >= idx.NumTerms() {
			log.Fatalf("term %d out of range (%d terms)", t, idx.NumTerms())
		}
	}

	alg := bench.MakeAlgorithm(bench.AlgoID(*algo), idx)
	opts := topk.Options{K: *k, Threads: *threads}
	switch *mode {
	case "exact":
		opts.Exact = true
	case "high":
		opts.Delta = *delta
		opts.BoostF = 1.3
		opts.FracP = 0.20
	case "low":
		opts.Delta = *delta / 2
		opts.BoostF = 2.5
		opts.FracP = 0.05
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	idx.Store().Flush()
	idx.Store().ResetStats()
	searcher := sparta.NewSearcher(alg, sparta.SearcherConfig{Timeout: *timeout})
	res, st, err := searcher.SearchContext(context.Background(), q, opts)
	if err != nil {
		log.Fatalf("%s failed: %v", alg.Name(), err)
	}
	io := idx.Store().Snapshot()

	fmt.Printf("%s %s on %s: %d results in %v (stop: %s)\n",
		alg.Name(), *mode, q, len(res), st.Duration.Round(time.Microsecond), st.StopReason)
	fmt.Printf("work: %d postings, %d random accesses, %d heap inserts, %d candidates peak\n",
		st.Postings, st.RandomAccesses, st.HeapInserts, st.CandidatesPeak)
	fmt.Printf("io: %d blocks read (%d seq, %d rand), %d cache hits, %v simulated\n",
		io.BlocksRead, io.SeqReads, io.RandReads, io.CacheHits, io.SimulatedIO.Round(time.Microsecond))
	for i, r := range res {
		if i >= 20 {
			fmt.Printf("... (%d more)\n", len(res)-20)
			break
		}
		fmt.Printf("%3d. doc %-8d score %d (%.4f)\n", i+1, r.Doc, r.Score, r.Score.Float())
	}
}
