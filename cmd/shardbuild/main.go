// Command shardbuild pre-builds a sharded on-disk index of a corpus
// directory created by corpusgen — the offline half of the
// scatter/gather serving layer. The global index is built once, then
// partitioned into P document-range shards whose posting lists keep
// their global document ids and global tf-idf scores (so sharded
// retrieval stays byte-equivalent to the single-index reference), and
// each shard is written as its own diskindex directory next to a
// shards.json manifest that OpenShardDir consumes.
//
// Usage:
//
//	shardbuild -corpus data/cw -p 4 -out data/cw/shards
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"sparta/internal/corpus"
	"sparta/internal/index"
	"sparta/internal/shardserve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shardbuild: ")

	var (
		corpusDir = flag.String("corpus", "", "corpus directory containing corpus.json (required)")
		out       = flag.String("out", "", "shard-set output directory (default <corpus>/shards)")
		p         = flag.Int("p", 4, "number of document-range shards")
		inner     = flag.Int("shards", 0, "per-shard sNRA document-id shards (0 = diskindex default)")
	)
	flag.Parse()
	if *corpusDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *p <= 0 {
		log.Fatalf("-p must be positive, got %d", *p)
	}
	if *out == "" {
		*out = filepath.Join(*corpusDir, "shards")
	}

	raw, err := os.ReadFile(filepath.Join(*corpusDir, "corpus.json"))
	if err != nil {
		log.Fatal(err)
	}
	var spec corpus.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		log.Fatalf("parsing corpus.json: %v", err)
	}

	log.Printf("indexing %s (%d docs)...", spec.Name, spec.Docs)
	start := time.Now()
	x := index.FromCorpus(corpus.New(spec))
	log.Printf("built global index: %d terms, %d postings (%v)",
		x.NumTerms(), x.TotalPostings(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	if err := shardserve.WriteDir(x, *p, *inner, *out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%d shards) in %v", *out, *p, time.Since(start).Round(time.Millisecond))
}
